"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric half of the telemetry layer (spans are the
structural half, :mod:`repro.obs.spans`).  Metrics are identified by a
Prometheus-style name plus a label set; three instrument types cover
everything the execution layers need:

* **counter** — monotonically increasing totals (units run, retries,
  memo hits);
* **gauge** — a sampled level (peak worker RSS, free disk, breaker
  state);
* **histogram** — a distribution over fixed buckets (unit durations,
  request latency), recorded as cumulative bucket counts plus sum and
  count, exactly the shape Prometheus expects.

Snapshots are plain JSON-safe lists so they pickle across pool workers;
:meth:`MetricsRegistry.merge` folds a worker's snapshot into the parent
registry (counters and histograms add, gauges keep the maximum — the
right semantics for high-water marks, the only gauges workers report).
Rendering targets two consumers: ``render_prometheus`` for the serve
tier's ``GET /metrics`` and the JSONL snapshot format
(:func:`metrics_jsonl`, :func:`load_metrics_file`) for run directories.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type, TypeVar, Union

from ..errors import ObsError

__all__ = [
    "METRICS_NAME",
    "METRICS_SCHEMA",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_jsonl",
    "load_metrics_file",
]

#: Canonical file name of a run directory's metrics snapshot.
METRICS_NAME = "METRICS.jsonl"

#: Format version of the metrics snapshot file.
METRICS_SCHEMA = 1

#: Duration buckets (seconds) sized for unit runs and request latency.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelPairs = Tuple[Tuple[str, str], ...]

_InstrumentT = TypeVar("_InstrumentT", bound="_Instrument")


def _label_pairs(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    pairs = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ObsError(f"invalid metric label name {key!r}")
        pairs.append((key, str(labels[key])))
    return tuple(pairs)


class _Instrument:
    """Shared identity of one (name, labels) time series."""

    kind = "none"

    def __init__(self, name: str, labels: LabelPairs):
        self.name = name
        self.labels = labels

    def sample(self) -> dict:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Project an externally tracked total into this counter.

        Used by the serve tier, whose live objects (memo store,
        admission controller) already maintain authoritative totals;
        the counter mirrors them at render time instead of
        double-counting.
        """
        self.value = float(value)

    def sample(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge(_Instrument):
    """A sampled level; merge keeps the maximum (high-water semantics)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        self.value = max(self.value, float(value))

    def sample(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram(_Instrument):
    """A distribution over fixed buckets (cumulative, Prometheus-style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelPairs,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObsError(f"histogram {name} needs at least one bucket")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # + overflow (+Inf)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def sample(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "buckets": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create home of every instrument, with snapshot/merge.

    Thread-safe: the serve tier updates instruments from the event-loop
    thread while ``BackgroundServer`` tests read snapshots from the
    main thread, and the pool parent merges worker snapshots while
    futures complete.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelPairs], _Instrument] = {}
        self._lock = threading.RLock()

    def _get(
        self,
        cls: Type[_InstrumentT],
        name: str,
        labels: Optional[Dict[str, str]],
        **kwargs: Any,
    ) -> _InstrumentT:
        if not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        key = (name, _label_pairs(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            if not isinstance(instrument, cls):
                raise ObsError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> List[dict]:
        """JSON-safe samples of every instrument, deterministically ordered."""
        with self._lock:
            samples = [i.sample() for i in self._instruments.values()]
        samples.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
        return samples

    def merge(self, samples: Iterable[dict]) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this registry.

        Counters and histogram buckets add; gauges keep the maximum.
        Raises :class:`~repro.errors.ObsError` on malformed samples or
        a type conflict with an existing instrument.
        """
        for sample in samples:
            if not isinstance(sample, dict) or "name" not in sample:
                raise ObsError(f"malformed metric sample: {sample!r}")
            name = sample["name"]
            labels = sample.get("labels") or {}
            kind = sample.get("type")
            if kind == "counter":
                self.counter(name, labels).inc(float(sample.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name, labels).set_max(float(sample.get("value", 0.0)))
            elif kind == "histogram":
                histogram = self.histogram(
                    name, labels, buckets=sample.get("buckets", DEFAULT_BUCKETS)
                )
                counts = sample.get("bucket_counts", [])
                if list(histogram.bounds) != [float(b) for b in sample.get("buckets", [])] or len(
                    counts
                ) != len(histogram.bucket_counts):
                    raise ObsError(
                        f"histogram {name!r}: incompatible bucket layout in merge"
                    )
                for index, count in enumerate(counts):
                    histogram.bucket_counts[index] += int(count)
                histogram.sum += float(sample.get("sum", 0.0))
                histogram.count += int(sample.get("count", 0))
            else:
                raise ObsError(f"unknown metric type {kind!r} for {name!r}")

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for sample in self.snapshot():
            name = sample["name"]
            if name not in seen_types:
                seen_types[name] = sample["type"]
                lines.append(f"# TYPE {name} {sample['type']}")
            labels = _format_labels(sample["labels"])
            if sample["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(
                    sample["buckets"], sample["bucket_counts"]
                ):
                    cumulative += count
                    le = _format_labels({**sample["labels"], "le": _fmt(bound)})
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += sample["bucket_counts"][-1]
                le = _format_labels({**sample["labels"], "le": "+Inf"})
                lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(f"{name}_sum{labels} {_fmt(sample['sum'])}")
                lines.append(f"{name}_count{labels} {sample['count']}")
            else:
                lines.append(f"{name}{labels} {_fmt(sample['value'])}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def metrics_jsonl(samples: Sequence[dict]) -> str:
    """Serialise samples as the ``METRICS.jsonl`` file body."""
    lines = [json.dumps({"metrics": METRICS_SCHEMA})]
    lines += [json.dumps(sample, sort_keys=True) for sample in samples]
    return "\n".join(lines) + "\n"


def load_metrics_file(path: Union[str, Path]) -> List[dict]:
    """Parse a ``METRICS.jsonl`` file back into a list of samples."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise ObsError(f"{path}: cannot read metrics snapshot: {error}") from None
    if not lines:
        raise ObsError(f"{path}: empty metrics snapshot")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise ObsError(f"{path}: corrupt metrics header") from None
    if not isinstance(header, dict) or header.get("metrics") != METRICS_SCHEMA:
        raise ObsError(
            f"{path}: unsupported metrics format {header!r}; "
            f"this repro reads metrics schema {METRICS_SCHEMA}"
        )
    samples: List[dict] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            sample = json.loads(line)
        except json.JSONDecodeError:
            raise ObsError(f"{path}:{number}: corrupt metrics sample") from None
        if not isinstance(sample, dict) or "name" not in sample:
            raise ObsError(f"{path}:{number}: malformed metrics sample")
        samples.append(sample)
    return samples
