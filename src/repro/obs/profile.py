"""Opt-in per-unit cProfile capture for the simulation hot path.

``repro sweep --profile`` (or ``profile_dir=`` on the runner) wraps
each unit's attempt in a :mod:`cProfile` profiler and persists the
stats to ``profiles/<unit>.prof`` in the run directory — standard
``pstats`` format, written atomically with a sidecar like any other
artefact:

.. code-block:: console

    $ python -m pstats runs/sweep-gcc1-ab12/profiles/0004:1:8.prof
    % sort cumulative
    % stats 15

Profiling is strictly additive: it never touches the unit's value or
outcome, and a unit that fails still leaves the profile of its last
attempt.  It is kept separate from the always-cheap metrics/spans
layer because the interpreter-wide tracing hook costs real time —
enable it to find *where* a phase goes, not to watch production runs.
"""

from __future__ import annotations

import cProfile
import marshal
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

__all__ = ["PROFILE_DIR_NAME", "profile_path", "capture_profile"]

#: Sub-directory of a run dir holding per-unit profiles.
PROFILE_DIR_NAME = "profiles"


def profile_path(profile_dir: Union[str, Path], unit_id: str) -> Path:
    """Where ``unit_id``'s profile lands (separators made file-safe)."""
    safe = unit_id.replace("/", "_").replace("\\", "_")
    return Path(profile_dir) / f"{safe}.prof"


@contextmanager
def capture_profile(path: Optional[Union[str, Path]]) -> Iterator[None]:
    """Profile the scope into ``path`` (pstats format); None is a no-op.

    The stats are marshalled to bytes and written through the atomic
    helper, so a crash mid-profile never leaves a torn file and the
    artefact is sidecar-tracked like everything else the run persists.
    """
    if path is None:
        yield
        return
    from ..runner.atomic import write_bytes_atomic

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.create_stats()
        write_bytes_atomic(path, marshal.dumps(profiler.stats), track=True)
