"""CLI-side loading and rendering: ``repro metrics`` / ``repro spans``.

``repro metrics <run-dir>`` renders the directory's ``METRICS.jsonl``
snapshot; when a run predates telemetry (or ran with it off) the
command falls back to *synthesising* a registry from the journal —
per-status unit totals, attempt counts, and a duration histogram from
the ``duration_s`` field (``elapsed_s`` for schema-1 journals) — so
every journalled run directory ever produced is inspectable.

``repro spans <run-dir>`` renders ``SPANS.jsonl`` as an indented tree
by parent links, one line per span with duration and status.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ObsError
from .metrics import METRICS_NAME, MetricsRegistry, load_metrics_file
from .spans import SPANS_NAME, load_spans_file

__all__ = [
    "find_journal",
    "load_run_metrics",
    "load_run_spans",
    "render_metrics",
    "render_spans",
]


def find_journal(run_dir: Path) -> Optional[Path]:
    """The run directory's journal file, whatever flavour it is."""
    direct = run_dir / "journal.jsonl"
    if direct.exists():
        return direct
    candidates = sorted(run_dir.glob("*.journal.jsonl"))
    return candidates[0] if candidates else None


def _journal_entries(path: Path) -> List[dict]:
    lines = path.read_text().splitlines()
    entries = []
    for line in lines[1:]:  # skip the header
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn final append; the journal loader tolerates it too
        if isinstance(entry, dict) and "unit" in entry:
            entries.append(entry)
    return entries


def _synthesize_from_journal(journal: Path) -> List[dict]:
    registry = MetricsRegistry()
    for entry in _journal_entries(journal):
        status = str(entry.get("status", "unknown"))
        registry.counter("repro_units_total", {"status": status}).inc()
        registry.counter("repro_unit_attempts_total").inc(
            float(entry.get("attempts", 1))
        )
        duration = entry.get("duration_s", entry.get("elapsed_s"))
        if duration is not None:
            registry.histogram("repro_unit_duration_seconds").observe(
                float(duration)
            )
    return registry.snapshot()


def load_run_metrics(run_dir: Union[str, Path]) -> Tuple[List[dict], str]:
    """A run directory's metric samples and where they came from.

    Returns ``(samples, source)`` with ``source`` one of ``"metrics"``
    (a ``METRICS.jsonl`` snapshot) or ``"journal"`` (synthesised).
    Raises :class:`~repro.errors.ObsError` when neither exists.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise ObsError(f"{run_dir}: not a run directory")
    snapshot = run_dir / METRICS_NAME
    if snapshot.exists():
        return load_metrics_file(snapshot), "metrics"
    journal = find_journal(run_dir)
    if journal is not None:
        return _synthesize_from_journal(journal), "journal"
    raise ObsError(
        f"{run_dir}: no {METRICS_NAME} and no journal to synthesise metrics "
        f"from — was this directory produced by a repro run?"
    )


def load_run_spans(run_dir: Union[str, Path]) -> List[dict]:
    """A run directory's span records (requires ``SPANS.jsonl``)."""
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise ObsError(f"{run_dir}: not a run directory")
    spans = run_dir / SPANS_NAME
    if not spans.exists():
        raise ObsError(
            f"{run_dir}: no {SPANS_NAME} — re-run with --telemetry to record "
            f"spans"
        )
    return load_spans_file(spans)


def _format_value(sample: dict) -> str:
    if sample.get("type") == "histogram":
        count = sample.get("count", 0)
        total = sample.get("sum", 0.0)
        mean = total / count if count else 0.0
        return f"count={count} sum={total:.6g}s mean={mean:.6g}s"
    value = sample.get("value", 0.0)
    if float(value) == int(float(value)):
        return str(int(float(value)))
    return f"{float(value):.6g}"


def render_metrics(samples: List[dict], source: str = "metrics") -> str:
    """A human-readable table of metric samples."""
    lines = [f"# {len(samples)} series ({source})"]
    width = max((len(s["name"]) for s in samples), default=0)
    for sample in samples:
        labels = sample.get("labels") or {}
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        lines.append(
            f"{sample['name']:<{width}} {sample.get('type', '?'):<9} "
            f"{_format_value(sample)}{('  ' + label_text) if label_text else ''}"
        )
    return "\n".join(lines)


def render_spans(records: List[dict], limit: Optional[int] = None) -> str:
    """Span records as an indented tree (parents before children)."""
    children: Dict[Optional[int], List[dict]] = {}
    for record in records:
        children.setdefault(record.get("parent"), []).append(record)

    lines: List[str] = []
    ids = {record["id"] for record in records}

    def walk(parent: Optional[int], depth: int) -> None:
        for record in children.get(parent, []):
            status = record.get("status", "ok")
            marker = "" if status == "ok" else f" [{status}]"
            unit = record.get("unit")
            unit_text = f" unit={unit}" if unit else ""
            lines.append(
                f"{'  ' * depth}{record['name']}"
                f" {record.get('duration_s', 0.0):.6f}s{unit_text}{marker}"
            )
            walk(record["id"], depth + 1)

    walk(None, 0)
    # Orphaned spans (a crashed run's partial flush) render as roots too.
    for parent in children:
        if parent is not None and parent not in ids:
            walk(parent, 0)
    total = len(records)
    if limit is not None and len(lines) > limit:
        lines = lines[:limit] + [f"... ({total - limit} more spans)"]
    header = f"# {total} spans"
    return "\n".join([header] + lines) if lines or total == 0 else header
