"""Injected clocks: the only place telemetry reads the real time.

Every duration or timestamp the observability layer records flows
through a :class:`Clock` instance, never a direct ``time.time()`` /
``time.monotonic()`` call.  Two things depend on that discipline:

* **determinism of model code** — the REP002 audit bans wall clocks in
  the model packages, and REP012 extends the guarantee to telemetry:
  instrumented code only ever receives time *through* the clock object
  it was handed, so the model layer stays clock-free and tests can
  substitute a :class:`ManualClock` to get exact, reproducible
  durations;
* **testability** — span trees and histogram contents are asserted
  against a hand-advanced clock instead of sleeping.

This module is the single REP012-sanctioned site of ``time`` usage in
:mod:`repro.obs`.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SystemClock", "ManualClock", "SYSTEM_CLOCK"]


class Clock:
    """Interface telemetry reads time through (monotonic + wall)."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary epoch, guaranteed non-decreasing."""
        raise NotImplementedError

    def wall(self) -> float:
        """Seconds since the Unix epoch (for human-facing timestamps)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real clocks, for production use."""

    def monotonic(self) -> float:
        return time.monotonic()

    def wall(self) -> float:
        return time.time()


class ManualClock(Clock):
    """A hand-advanced clock for deterministic telemetry tests."""

    def __init__(self, start: float = 0.0, wall_start: float = 0.0):
        self._mono = float(start)
        self._wall = float(wall_start)

    def advance(self, seconds: float) -> None:
        self._mono += seconds
        self._wall += seconds

    def monotonic(self) -> float:
        return self._mono

    def wall(self) -> float:
        return self._wall


#: Shared default clock instance.
SYSTEM_CLOCK = SystemClock()
