"""Structured spans: nested timed scopes written to ``SPANS.jsonl``.

A span is one timed scope of execution — a whole unit, one simulation
call inside it, one HTTP request — with an id, an optional parent (the
span open when it started), a duration from the injected monotonic
clock, and free-form string attributes.  Spans nest through the
tracer's open-span stack, so instrumented code never threads parent
ids by hand:

.. code-block:: python

    with tracer.span("unit", unit="0004:1:8"):
        with tracer.span("simulate"):
            ...  # recorded with the unit span as parent

Records are plain JSON-safe dicts so a pool worker's spans pickle back
to the parent, which absorbs them with :meth:`Tracer.absorb` (ids are
re-based to stay unique).  On flush the file is canonically reordered
and re-numbered by unit submission order
(:func:`canonical_spans` — the span-file analogue of the journal's
``rewrite_ordered``), making its *structure* independent of worker
count and completion order; only the measured timings are volatile.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..errors import ObsError
from .clock import SYSTEM_CLOCK, Clock

__all__ = [
    "SPANS_NAME",
    "SPANS_SCHEMA",
    "Span",
    "Tracer",
    "canonical_spans",
    "spans_jsonl",
    "load_spans_file",
]

#: Canonical file name of a run directory's span log.
SPANS_NAME = "SPANS.jsonl"

#: Format version of the span log file.
SPANS_SCHEMA = 1


class Span:
    """One open scope; mutate attributes via :meth:`set` before it closes."""

    __slots__ = ("id", "parent", "name", "attrs", "start", "duration_s", "status")

    def __init__(self, span_id: int, parent: Optional[int], name: str, attrs: Dict[str, str]):
        self.id = span_id
        self.parent = parent
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration_s = 0.0
        self.status = "ok"

    def set(self, **attrs: object) -> "Span":
        """Attach attributes discovered mid-span (e.g. response status)."""
        for key, value in attrs.items():
            self.attrs[key] = str(value)
        return self

    def record(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "unit": self.attrs.get("unit"),
            "start": round(self.start, 6),
            "duration_s": round(self.duration_s, 6),
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Records spans against an injected clock.

    ``max_spans`` bounds memory for long-lived processes (the serve
    tier keeps a ring of recent request spans); batch runs leave it
    unset and flush to disk instead.
    """

    def __init__(self, clock: Optional[Clock] = None, max_spans: Optional[int] = None):
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.max_spans = max_spans
        self._records: List[dict] = []
        self._stack: List[Span] = []
        self._seq = 0
        #: Total spans ever recorded (unaffected by the ring bound).
        self.recorded = 0

    @contextmanager
    def span(self, name: str, root: bool = False, **attrs: object) -> Iterator[Span]:
        """Open a child of the innermost open span; closes on exit.

        The span is recorded on exit with its measured duration; an
        escaping exception marks it ``status="error"`` and re-raises.
        Spans inherit their parent's ``unit`` attribute unless given
        one explicitly, so hot-path phases stay attributable.

        ``root=True`` records a top-level span that neither takes a
        parent nor joins the nesting stack.  Concurrently interleaved
        scopes — asyncio request handlers that await mid-span — must
        use it: the open-span stack assumes strictly nested lifetimes,
        which interleaving breaks.
        """
        self._seq += 1
        parent = None if root else (self._stack[-1] if self._stack else None)
        attributes = {key: str(value) for key, value in attrs.items()}
        if parent is not None and "unit" not in attributes and "unit" in parent.attrs:
            attributes["unit"] = parent.attrs["unit"]
        span = Span(self._seq, parent.id if parent else None, name, attributes)
        span.start = self.clock.wall()
        started = self.clock.monotonic()
        if not root:
            self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.duration_s = self.clock.monotonic() - started
            if not root:
                self._stack.pop()
            self._append(span.record())

    def _append(self, record: dict) -> None:
        self._records.append(record)
        self.recorded += 1
        if self.max_spans is not None and len(self._records) > self.max_spans:
            del self._records[: len(self._records) - self.max_spans]

    def absorb(self, records: Sequence[dict]) -> None:
        """Fold another tracer's records in, re-basing ids to stay unique."""
        base = self._seq
        highest = base
        for record in records:
            if not isinstance(record, dict) or "id" not in record or "name" not in record:
                raise ObsError(f"malformed span record: {record!r}")
            moved = dict(record)
            moved["id"] = record["id"] + base
            if record.get("parent") is not None:
                moved["parent"] = record["parent"] + base
            highest = max(highest, moved["id"])
            self._append(moved)
        self._seq = highest

    def records(self) -> List[dict]:
        """Recorded spans in completion order (a copy)."""
        return list(self._records)


def canonical_spans(records: Sequence[dict], unit_order: Sequence[str]) -> List[dict]:
    """Reorder and re-number spans by unit submission order.

    A parallel run records spans as workers finish, so raw order and
    ids depend on scheduling.  Grouped stably by the ``unit`` attribute
    (spans with no unit keep their relative position, first) and
    re-numbered sequentially with parent links preserved, the output is
    independent of worker count — the same guarantee
    ``RunJournal.rewrite_ordered`` gives the journal.
    """
    position = {unit_id: index for index, unit_id in enumerate(unit_order)}

    def group(record: dict) -> int:
        unit = record.get("unit")
        if unit is None:
            return -1
        return position.get(unit, len(position))

    ordered = sorted(records, key=group)  # sorted() is stable
    renumber: Dict[int, int] = {}
    for fresh, record in enumerate(ordered, start=1):
        renumber[record["id"]] = fresh
    result = []
    for record in ordered:
        moved = dict(record)
        moved["id"] = renumber[record["id"]]
        parent = record.get("parent")
        moved["parent"] = renumber.get(parent) if parent is not None else None
        result.append(moved)
    return result


def spans_jsonl(records: Sequence[dict]) -> str:
    """Serialise span records as the ``SPANS.jsonl`` file body."""
    lines = [json.dumps({"spans": SPANS_SCHEMA})]
    lines += [json.dumps(record, sort_keys=True) for record in records]
    return "\n".join(lines) + "\n"


def load_spans_file(path: Union[str, Path]) -> List[dict]:
    """Parse a ``SPANS.jsonl`` file back into a list of span records."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise ObsError(f"{path}: cannot read span log: {error}") from None
    if not lines:
        raise ObsError(f"{path}: empty span log")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise ObsError(f"{path}: corrupt span log header") from None
    if not isinstance(header, dict) or header.get("spans") != SPANS_SCHEMA:
        raise ObsError(
            f"{path}: unsupported span log format {header!r}; "
            f"this repro reads span schema {SPANS_SCHEMA}"
        )
    records: List[dict] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            raise ObsError(f"{path}:{number}: corrupt span record") from None
        if not isinstance(record, dict) or "id" not in record or "name" not in record:
            raise ObsError(f"{path}:{number}: malformed span record")
        records.append(record)
    return records
