"""The telemetry bundle: one object carrying registry, tracer, clock.

A :class:`Telemetry` instance is what the execution layers are handed
(or construct): the metrics registry and span tracer share one injected
clock, and the bundle knows how to persist both into a run directory as
``METRICS.jsonl`` / ``SPANS.jsonl`` — written atomically with sidecars
(``track=True``) and classified *volatile* by the integrity layer, like
the journal, because their timing payloads legitimately differ between
byte-equivalent runs.

Two usage shapes:

* **explicit** — the runner engine and serve tier receive a bundle and
  call :meth:`span` / :meth:`count` / :meth:`observe` directly;
* **ambient** — the simulation hot path (picklable unit bodies that
  cannot carry a live handle) asks :func:`current` for the bundle the
  engine activated around the attempt loop, falling back to the shared
  :data:`DISABLED` no-op bundle, so model-layer call sites stay free of
  ``if telemetry`` branches *and* of clocks (REP002/REP012: time is
  only ever read inside the tracer, through the injected clock).

Flushing batches: every :meth:`unit_done` marks the bundle dirty and
rewrites both files once ``flush_every`` units accumulated (plus a
final :meth:`flush` with the canonical unit order).  Each rewrite is a
whole-file atomic replace, so a crashed run leaves valid telemetry that
is at most ``flush_every`` units stale — the same crash-safety contract
as the journal at a fraction of the fsync traffic.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from .clock import SYSTEM_CLOCK, Clock
from .metrics import METRICS_NAME, MetricsRegistry, metrics_jsonl
from .spans import SPANS_NAME, Span, Tracer, canonical_spans, spans_jsonl

__all__ = [
    "Telemetry",
    "DISABLED",
    "activate",
    "current",
]


class Telemetry:
    """Registry + tracer + clock, with run-directory persistence."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Clock] = None,
        max_spans: Optional[int] = None,
        flush_every: int = 16,
    ):
        self.enabled = enabled
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, max_spans=max_spans)
        self.flush_every = max(1, int(flush_every))
        self.out_dir: Optional[Path] = None
        self._dirty = 0

    # -- instrumentation surface ------------------------------------

    @contextmanager
    def span(self, name: str, root: bool = False, **attrs: object) -> Iterator[Span]:
        """A timed scope (see :meth:`repro.obs.spans.Tracer.span`).

        Disabled bundles yield an unrecorded span object, so call
        sites are branch-free either way.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        with self.tracer.span(name, root=root, **attrs) as span:
            yield span

    def count(
        self, name: str, amount: float = 1.0, **labels: str
    ) -> None:
        """Increment a counter; a no-op when disabled."""
        if self.enabled:
            self.registry.counter(name, labels or None).inc(amount)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one histogram observation; a no-op when disabled."""
        if self.enabled:
            self.registry.histogram(name, labels or None).observe(value)

    def gauge_set(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge level; a no-op when disabled."""
        if self.enabled:
            self.registry.gauge(name, labels or None).set(value)

    def gauge_max(self, name: str, value: float, **labels: str) -> None:
        """Raise a high-water gauge; a no-op when disabled."""
        if self.enabled:
            self.registry.gauge(name, labels or None).set_max(value)

    # -- worker merge ------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable state for shipping a worker's telemetry back."""
        return {
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.records(),
        }

    def absorb(self, snapshot: Optional[dict]) -> None:
        """Merge a worker's :meth:`snapshot` into this bundle."""
        if not self.enabled or not snapshot:
            return
        self.registry.merge(snapshot.get("metrics", []))
        self.tracer.absorb(snapshot.get("spans", []))

    # -- persistence -------------------------------------------------

    def bind(self, out_dir: Union[str, Path]) -> "Telemetry":
        """Direct flushes at ``out_dir`` (created by the caller)."""
        self.out_dir = Path(out_dir)
        return self

    def unit_done(self) -> None:
        """Mark one unit's telemetry recorded; flush every ``flush_every``."""
        if not self.enabled or self.out_dir is None:
            return
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self, unit_order: Optional[Sequence[str]] = None) -> None:
        """Atomically rewrite ``METRICS.jsonl`` and ``SPANS.jsonl``.

        With ``unit_order`` (the final flush of a run) the span log is
        canonically reordered so its structure is independent of
        worker scheduling.
        """
        if not self.enabled or self.out_dir is None:
            return
        from ..runner.atomic import write_text_atomic

        records = self.tracer.records()
        if unit_order is not None:
            records = canonical_spans(records, unit_order)
        write_text_atomic(
            self.out_dir / METRICS_NAME,
            metrics_jsonl(self.registry.snapshot()),
            track=True,
        )
        write_text_atomic(
            self.out_dir / SPANS_NAME, spans_jsonl(records), track=True
        )
        self._dirty = 0


class _NullSpanType(Span):
    """The span handed out by disabled bundles: accepts sets, records nothing."""

    def __init__(self) -> None:
        super().__init__(0, None, "disabled", {})

    def set(self, **attrs: object) -> "Span":
        return self


_NULL_SPAN = _NullSpanType()

#: Shared always-off bundle: the ambient default when nothing is active.
DISABLED = Telemetry(enabled=False)

_ACTIVE: List[Telemetry] = []


@contextmanager
def activate(telemetry: Optional[Telemetry]) -> Iterator[None]:
    """Make ``telemetry`` the ambient bundle for :func:`current`.

    The engine activates its bundle around each unit's attempt loop so
    hot-path instrumentation inside unit bodies (which are picklable
    and cannot carry the live object) can find it.  Activations nest;
    ``None`` activates nothing and is a no-op scope.
    """
    if telemetry is None:
        yield
        return
    _ACTIVE.append(telemetry)
    try:
        yield
    finally:
        _ACTIVE.pop()


def current() -> Telemetry:
    """The innermost active bundle, or the shared :data:`DISABLED` one."""
    return _ACTIVE[-1] if _ACTIVE else DISABLED
