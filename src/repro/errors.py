"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "ModelError",
    "TraceError",
    "ExperimentError",
    "RunnerError",
    "CheckpointError",
    "IntegrityError",
    "ResourceError",
    "ServeError",
    "UnitTimeoutError",
    "AbortError",
    "LintError",
    "ObsError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A system or cache configuration is internally inconsistent.

    Examples: a cache size that is not a power of two, an associativity
    larger than the number of lines, or a two-level system whose L2 is
    smaller than a single L1 when the policy requires otherwise.
    """


class GeometryError(ConfigurationError):
    """A cache geometry (size, line size, associativity) is invalid."""


class ModelError(ReproError):
    """An analytical model (timing or area) was given unusable inputs."""


class TraceError(ReproError):
    """A trace or workload definition is malformed."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment was misconfigured."""


class RunnerError(ReproError):
    """The resilient execution engine was misused or misconfigured.

    Examples: an invalid retry policy, or an unparsable fault-injection
    specification in ``REPRO_FAULTS``.
    """


class CheckpointError(RunnerError):
    """A run journal is corrupt or written by an incompatible version."""


class IntegrityError(RunnerError):
    """An artefact integrity record (manifest or sidecar) is unusable.

    Raised when ``MANIFEST.json`` or a ``.sha256`` sidecar cannot even
    be interpreted.  A *mismatch* between a healthy record and an
    artefact is not an error — ``repro verify`` reports it as a finding
    and ``--repair`` quarantines the artefact.
    """


class ResourceError(RunnerError):
    """A run was refused or degraded because a resource limit was hit.

    Examples: the output filesystem has less free space than the
    watchdog's preflight requires, or a worker's RSS high-water mark
    exceeded the configured ceiling.
    """


class ServeError(ReproError):
    """A request to the sweep service could not be served.

    Carries the HTTP semantics the service maps library failures onto:
    ``status`` is the response code and ``retry_after_s``, when set, is
    surfaced as a ``Retry-After`` header so well-behaved clients back
    off instead of hammering an overloaded or broken service.  Concrete
    conditions (malformed request, load shed, open circuit breaker,
    blown deadline) are subclasses defined by :mod:`repro.serve`.
    """

    status: int = 500
    retry_after_s: "float | None" = None

    def __init__(self, message: str, *, retry_after_s: "float | None" = None):
        super().__init__(message)
        if retry_after_s is not None:
            self.retry_after_s = retry_after_s


class LintError(ReproError):
    """The static-analysis engine itself failed or was misused.

    Examples: a lint target that does not exist or fails to parse, or
    an unknown rule id in ``--select``/``--ignore``.  Findings are not
    errors — ``repro lint`` reports them and exits 1; this class covers
    the exit-2 internal-error path.
    """


class ObsError(ReproError):
    """The telemetry subsystem was misused or its artefacts are unusable.

    Examples: an invalid metric name or label set, merging snapshots of
    incompatible metric types, or a ``repro metrics`` / ``repro spans``
    target directory that holds neither telemetry files nor a journal
    to synthesise them from.
    """


class UnitTimeoutError(RunnerError):
    """A single unit of work exceeded its wall-clock budget.

    Timeouts are deliberately not retried: a configuration that blows
    its budget once is assumed pathological, not transient.
    """


class AbortError(RunnerError):
    """A run was aborted hard after its graceful drain was exhausted.

    Raised by the lifecycle supervisor on the *second* shutdown signal
    (or when the drain deadline elapses): in-flight work is abandoned,
    but every unit that finished before the abort is already journalled,
    so ``--resume`` picks up exactly where the abort cut in.
    """
