"""Unit constants of the Mulder/Quach/Flynn area model.

All values are in register-bit equivalents (rbe).  The two the paper
states explicitly are the 6T SRAM cell (0.6 rbe) and the comparator
(6 × 0.6 rbe); the per-row / per-column / per-subarray periphery
weights are representative values in the spirit of Mulder's model,
chosen so small memories show the pronounced per-bit overhead the paper
describes while large memories approach the cell-area floor.
"""

from __future__ import annotations

__all__ = [
    "RBE_PER_REGISTER_BIT",
    "RBE_PER_SRAM_BIT",
    "RBE_PER_COMPARATOR",
    "RBE_SENSE_AMP_PER_COLUMN",
    "RBE_PRECHARGE_PER_COLUMN",
    "RBE_COLUMN_MUX_PER_COLUMN",
    "RBE_WORDLINE_DRIVER_PER_ROW",
    "RBE_DECODER_PER_ROW",
    "RBE_DECODER_FIXED_PER_SUBARRAY",
    "RBE_CONTROL_FIXED",
    "RBE_OUTPUT_DRIVER_PER_BIT",
]

#: The defining unit: one bit of a register file cell.
RBE_PER_REGISTER_BIT = 1.0

#: A 6-transistor static RAM cell (Mulder's published value).
RBE_PER_SRAM_BIT = 0.6

#: One tag comparator (the paper: "a comparator only occupies 6x0.6 rbe's").
RBE_PER_COMPARATOR = 6 * RBE_PER_SRAM_BIT

#: Differential sense amplifier, per bit-line pair (column).
RBE_SENSE_AMP_PER_COLUMN = 6.0

#: Bit-line precharge/equalise devices, per column.
RBE_PRECHARGE_PER_COLUMN = 1.5

#: Column multiplexor pass devices, per column.
RBE_COLUMN_MUX_PER_COLUMN = 1.0

#: Word-line driver, per row of a subarray.
RBE_WORDLINE_DRIVER_PER_ROW = 2.0

#: Row decode gates, per row of a subarray.
RBE_DECODER_PER_ROW = 1.0

#: Predecoders and address buffering, per subarray.
RBE_DECODER_FIXED_PER_SUBARRAY = 60.0

#: Control logic, per cache array (state machine, output enables).
RBE_CONTROL_FIXED = 250.0

#: Output data drivers, per output bit.
RBE_OUTPUT_DRIVER_PER_BIT = 2.0
