"""Register-bit-equivalent (rbe) cache area model after Mulder et al.

Mulder, Quach and Flynn defined the *register-bit equivalent*: the area
of a one-bit register cell, a technology-independent unit.  A 6T SRAM
cell is 0.6 rbe; peripheral structures (sense amplifiers, drivers,
decoders, comparators, control) are charged per column / per row / per
subarray, so splitting an array into more subarrays for speed — as the
timing optimiser does — costs area, exactly the coupling the paper
highlights in §2.4.

Public API
----------
:func:`~repro.area.model.cache_area`
    Area breakdown for a geometry + organisation + port count.
:func:`~repro.area.model.optimal_cache_area`
    Area of the timing-optimal organisation (what the paper plots).
"""

from .model import AreaBreakdown, cache_area, optimal_cache_area
from .rbe import (
    RBE_PER_COMPARATOR,
    RBE_PER_REGISTER_BIT,
    RBE_PER_SRAM_BIT,
)

__all__ = [
    "AreaBreakdown",
    "cache_area",
    "optimal_cache_area",
    "RBE_PER_SRAM_BIT",
    "RBE_PER_REGISTER_BIT",
    "RBE_PER_COMPARATOR",
]
