"""Structured rbe area model for one cache array.

The model charges:

* **cells** — data bits plus tag bits (address tag + valid + dirty) at
  0.6 rbe each, multiplied by the port factor (§6 of the paper assumes
  a dual-ported cell "requires twice the area");
* **periphery** — sense amps, precharge and column muxes per column;
  word-line drivers and decode gates per row; predecode per subarray —
  all of which scale with the *organisation* chosen by the timing
  optimiser, reproducing the paper's observation that organising for
  speed "increases the area required per bit";
* **comparators** — one per way at the paper's stated 3.6 rbe;
* **control** — a fixed per-array block.

Port scaling: extra ports duplicate the bit lines and their periphery
(sense, precharge, muxes) and widen every cell, but not the decode or
control logic; for two ports the total comes out within a few percent
of the paper's "twice the area" rule, which is asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from ..errors import ModelError
from ..timing.optimal import optimal_timing
from ..timing.organization import (
    ArrayOrganization,
    data_array_shape,
    tag_array_shape,
    tag_bits_per_entry,
)
from ..timing.technology import TECH_05UM, Technology
from . import rbe

__all__ = ["AreaBreakdown", "cache_area", "optimal_cache_area"]


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-structure area (rbe) of one cache array."""

    data_cells: float
    tag_cells: float
    sense_amps: float
    column_circuitry: float
    row_circuitry: float
    decoders: float
    comparators: float
    output_drivers: float
    control: float

    @property
    def total(self) -> float:
        """Total array area in rbe."""
        return (
            self.data_cells
            + self.tag_cells
            + self.sense_amps
            + self.column_circuitry
            + self.row_circuitry
            + self.decoders
            + self.comparators
            + self.output_drivers
            + self.control
        )

    @property
    def cell_fraction(self) -> float:
        """Fraction of the area that is RAM cells (rises with size)."""
        return (self.data_cells + self.tag_cells) / self.total


def cache_area(
    geometry: CacheGeometry,
    organization: ArrayOrganization,
    ports: int = 1,
) -> AreaBreakdown:
    """Area of ``geometry`` laid out as ``organization`` with ``ports``.

    Parameters
    ----------
    geometry:
        Cache shape (capacity, line size, associativity).
    organization:
        Subarray split factors — normally the timing-optimal ones.
    ports:
        Independent read/write ports; each extra port doubles the cell
        and duplicates the bit-line periphery.
    """
    if ports < 1:
        raise ModelError("ports must be >= 1")

    d_rows, d_cols = data_array_shape(
        geometry, organization.ndwl, organization.ndbl, organization.nspd
    )
    t_rows, t_cols = tag_array_shape(
        geometry, organization.ntwl, organization.ntbl, organization.ntspd
    )

    data_bits = geometry.size_bytes * 8
    tag_bits = geometry.n_sets * geometry.associativity * tag_bits_per_entry(geometry)

    cell_scale = float(ports)
    data_cells = data_bits * rbe.RBE_PER_SRAM_BIT * cell_scale
    tag_cells = tag_bits * rbe.RBE_PER_SRAM_BIT * cell_scale

    total_data_cols = d_cols * organization.ndwl
    total_tag_cols = t_cols * organization.ntwl
    total_cols = (total_data_cols + total_tag_cols) * ports

    total_data_rows = d_rows * organization.ndbl
    total_tag_rows = t_rows * organization.ntbl
    # Row circuitry is replicated per word-line split.
    driven_rows = (
        total_data_rows * organization.ndwl + total_tag_rows * organization.ntwl
    )

    sense_amps = total_cols * rbe.RBE_SENSE_AMP_PER_COLUMN
    column_circuitry = total_cols * (
        rbe.RBE_PRECHARGE_PER_COLUMN + rbe.RBE_COLUMN_MUX_PER_COLUMN
    )
    row_circuitry = driven_rows * rbe.RBE_WORDLINE_DRIVER_PER_ROW
    n_subarrays = organization.data_subarrays + organization.tag_subarrays
    decoders = (
        driven_rows * rbe.RBE_DECODER_PER_ROW
        + n_subarrays * rbe.RBE_DECODER_FIXED_PER_SUBARRAY
    )
    comparators = geometry.associativity * rbe.RBE_PER_COMPARATOR
    output_drivers = 64 * ports * rbe.RBE_OUTPUT_DRIVER_PER_BIT
    control = rbe.RBE_CONTROL_FIXED

    return AreaBreakdown(
        data_cells=data_cells,
        tag_cells=tag_cells,
        sense_amps=sense_amps,
        column_circuitry=column_circuitry,
        row_circuitry=row_circuitry,
        decoders=decoders,
        comparators=comparators,
        output_drivers=output_drivers,
        control=control,
    )


@lru_cache(maxsize=4096)
def _optimal_cache_area_cached(
    size_bytes: int,
    line_size: int,
    associativity: int,
    ports: int,
    tech: Technology,
) -> AreaBreakdown:
    geometry = CacheGeometry(
        size_bytes, line_size=line_size, associativity=associativity
    )
    timing = optimal_timing(size_bytes, associativity, line_size, tech)
    return cache_area(geometry, timing.organization, ports)


def optimal_cache_area(
    size_bytes: int,
    associativity: int = 1,
    ports: int = 1,
    line_size: int = DEFAULT_LINE_SIZE,
    tech: Technology = TECH_05UM,
) -> AreaBreakdown:
    """Area of the *timing-optimal* organisation of a cache.

    This is the quantity the paper plots on its X axes: each size is
    organised for minimum cycle time first, and the resulting (larger)
    area is what the configuration is charged.
    """
    return _optimal_cache_area_cached(size_bytes, line_size, associativity, ports, tech)
