"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    All registered experiments with their paper references.
``run <id> [--scale S]``
    Recompute one exhibit and print its series.
``plot <id> [--scale S]``
    Recompute one exhibit and draw it as an ASCII log-log figure.
``eval --l1-kb N [--l2-kb M] [...]``
    Evaluate a single configuration on a workload.
``envelope --workload W [...]``
    Sweep the paper design space and print the best-performance
    staircase.
``workloads``
    The seven workload models and their footprints.
``report --out DIR [--ids id1,id2] [--scale S] [--resume] [--keep-going]``
    Regenerate experiments into a directory of JSON + text artefacts,
    checkpointed so interrupted runs resume and failures isolate.
``sweep --workload W [--out DIR] [...]``
    Evaluate the full design space point by point through the
    resilient runner.  Without ``--out`` the sweep lands in a
    deterministic ``runs/sweep-<workload>-<hash>`` directory (same
    sweep = same directory, so re-runs resume instead of scattering
    journal files in the cwd).
``serve --store DIR [--port P] [--workers N]``
    Answer evaluate/TPI/sweep/envelope queries over HTTP with
    content-addressed memoization, request coalescing, admission
    control, and a circuit breaker; see ``docs/api.md``.  Live
    telemetry is exposed on ``GET /metrics`` (Prometheus text) and
    ``GET /v1/stats`` (JSON).
``metrics <run-dir> [--format json]``
    Print a run directory's metrics: ``METRICS.jsonl`` when the run
    recorded telemetry, else counters synthesized from its journal —
    so pre-telemetry run directories still report.
``spans <run-dir> [--limit N] [--format json]``
    Print a run directory's span tree from ``SPANS.jsonl`` (requires
    the run to have used ``--telemetry``).
``lint [paths] [--format json] [--select ...] [--program] [--no-cache]``
    Run the repro static-analysis checkers (atomic writes,
    determinism, error policy, pool picklability, geometry literals,
    manifest tracking) over source trees; exit 0 clean, 1 findings,
    2 internal error.  ``--program`` adds the whole-program phase
    (call graph, taint, REP007-REP011); results are cached by content
    hash in ``.repro-lint-cache.json`` unless ``--no-cache``.
    ``--list-rules`` prints the rule catalogue.
``verify DIR [--repair]``
    Re-hash every tracked artefact under ``DIR`` against its sha256
    sidecar and ``MANIFEST.json``; exit 0 clean, 1 findings.
    ``--repair`` quarantines corrupt artefacts and replays the
    affected runs from their ``RUN.json`` recipes.
``chaos --out DIR [--seed N] [--rounds N] [--serve]``
    Seeded chaos soak: run a report repeatedly under randomized (but
    seed-reproducible) fault schedules plus direct bit rot, then
    verify the repaired tree converges byte-identical to a clean run;
    exit 0 converged, 1 diverged.  With ``--serve`` the soak targets a
    live ``repro serve`` instance instead: pool kills, poisoned memo
    entries, and slow workers must never produce a wrong answer or an
    untyped failure.

``report``, ``sweep``, ``lint``, ``verify``, ``chaos``, and ``serve``
accept ``--workers N`` (or ``--workers auto``) to fan units out over
worker processes with identical output.  ``report`` and ``sweep``
accept ``--telemetry`` to record ``METRICS.jsonl`` + ``SPANS.jsonl``
into the run directory (volatile artefacts: result bytes are
unchanged); ``sweep`` additionally accepts ``--profile`` to write a
cProfile ``profiles/<unit>.prof`` per design point.

Library failures (:class:`~repro.errors.ReproError`) print a one-line
``error: …`` to stderr and exit with code 2; pass ``--debug`` for the
full traceback.

``report``, ``sweep``, and ``serve`` shut down in two phases
(:mod:`repro.runner.lifecycle`): the first SIGTERM/SIGINT drains —
in-flight units finish and are journalled, the process exits 75 with a
``--resume`` hint — and a second signal (or an expired drain deadline)
aborts hard with exit 70.  Either way, everything journalled before
the stop is picked up by ``--resume`` without re-execution.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import all_rules, lint_paths, render_human, render_json
from .analysis.cache import DEFAULT_CACHE_NAME
from .cache.hierarchy import Policy
from .core.config import SystemConfig
from .core.envelope import best_envelope
from .core.evaluate import evaluate
from .core.explorer import (
    SWEEP_JOURNAL_NAME,
    default_sweep_dir,
    design_space,
    run_sweep_dir,
    sweep,
)
from .errors import AbortError, IntegrityError, LintError, ReproError
from .obs import load_run_metrics, load_run_spans, render_metrics, render_spans
from .runner import EXIT_ABORTED, Supervisor, verify_tree
from .serve import ServePolicy, run_serve
from .study import experiment_ids, get_experiment
from .study.chaos import run_chaos
from .study.serve_chaos import run_serve_chaos
from .study.plot import plot_experiment
from .study.repair import verify_and_repair
from .study.report import render_table
from .study.resultstore import FAILURES_NAME, JOURNAL_NAME, write_report
from .traces.stats import compute_stats
from .traces.store import get_trace
from .traces.workloads import WORKLOADS
from .units import kb

__all__ = ["main"]


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        (eid, get_experiment(eid).paper_reference, get_experiment(eid).title)
        for eid in experiment_ids()
    ]
    print(render_table(("id", "paper", "title"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment_id)
    result = experiment.run(scale=args.scale)
    print(result.render())
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment_id)
    result = experiment.run(scale=args.scale)
    print(plot_experiment(result, width=args.width, height=args.height))
    return 0


def _config_from(args: argparse.Namespace) -> SystemConfig:
    config = SystemConfig(
        l1_bytes=kb(args.l1_kb),
        l2_bytes=kb(args.l2_kb) if args.l2_kb else 0,
        l2_associativity=args.l2_assoc,
        policy=Policy.EXCLUSIVE if args.exclusive else Policy.CONVENTIONAL,
        off_chip_ns=args.off_chip_ns,
    )
    if args.dual_ported:
        config = config.dual_ported()
    return config


def _cmd_eval(args: argparse.Namespace) -> int:
    config = _config_from(args)
    perf = evaluate(config, args.workload, scale=args.scale)
    print(f"{config.describe()} on {args.workload}")
    rows = [
        ("TPI (ns/instr)", perf.tpi_ns),
        ("area (rbe)", perf.area_rbe),
        ("L1 cycle (ns)", perf.tpi.timings.l1_cycle_ns),
        ("L1 miss rate", perf.stats.l1_miss_rate),
        ("L2 local miss rate", perf.stats.l2_local_miss_rate),
        ("global miss rate", perf.stats.global_miss_rate),
        ("memory stall share", perf.tpi.memory_fraction),
    ]
    print(render_table(("metric", "value"), rows))
    return 0


def _cmd_envelope(args: argparse.Namespace) -> int:
    template = _config_from(args)
    perfs = sweep(args.workload, design_space(template), scale=args.scale)
    envelope = best_envelope(perfs)
    rows = [
        (
            p.label,
            p.area_rbe,
            p.tpi_ns,
            "2-level" if p.performance.config.has_l2 else "1-level",
        )
        for p in envelope
    ]
    print(render_table(("config", "area_rbe", "tpi_ns", "levels"), rows))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in WORKLOADS.items():
        trace = get_trace(name, args.scale)
        stats = compute_stats(trace)
        rows.append(
            (
                name,
                spec.paper_total_refs,
                stats.n_refs,
                f"{stats.data_ratio:.3f}",
                stats.instruction_footprint_bytes // 1024,
                stats.data_footprint_bytes // 1024,
                spec.description,
            )
        )
    print(
        render_table(
            (
                "workload",
                "paper_Mrefs",
                "synth_refs",
                "data_ratio",
                "code_KB",
                "data_KB",
                "description",
            ),
            rows,
        )
    )
    return 0


def _drain_notice(supervisor: Supervisor, journal: Path) -> int:
    """Report a graceful drain (resume hint included) and pick the exit code.

    Everything journalled before the signal is kept; the distinct exit
    code (75) tells wrappers the run stopped early *by request* — rerun
    with ``--resume`` to finish, nothing completed is re-executed.
    """
    print(
        f"drained: {supervisor.token.reason}; completed units are "
        f"journalled in {journal} — re-run with --resume to finish",
        file=sys.stderr,
    )
    return supervisor.exit_code()


def _cmd_report(args: argparse.Namespace) -> int:
    ids = args.ids.split(",") if args.ids else None
    with Supervisor() as supervisor:
        written = write_report(
            args.out,
            ids=ids,
            scale=args.scale,
            resume=args.resume,
            keep_going=args.keep_going,
            timeout_s=args.timeout,
            retries=args.retries,
            workers=args.workers,
            telemetry=args.telemetry,
            cancel=supervisor.token,
        )
    print(f"wrote {len(written)} experiments to {args.out}")
    if supervisor.triggered:
        return _drain_notice(supervisor, Path(args.out) / JOURNAL_NAME)
    manifest = Path(args.out) / FAILURES_NAME
    if manifest.exists():
        failures = json.loads(manifest.read_text())["failures"]
        print(
            f"{len(failures)} experiment(s) failed; see {manifest}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    template = _config_from(args)
    # Every sweep gets a managed run directory: --out names it, else
    # the deterministic default (same sweep = same directory, so a
    # re-run resumes it instead of scattering journals in the cwd).
    out = Path(args.out) if args.out else default_sweep_dir(
        args.workload, template, args.scale
    )
    with Supervisor() as supervisor:
        run, points = run_sweep_dir(
            out,
            args.workload,
            template,
            scale=args.scale,
            keep_going=args.keep_going,
            timeout_s=args.timeout,
            retries=args.retries,
            resume=args.resume,
            workers=args.workers,
            telemetry=args.telemetry,
            profile=args.profile,
            cancel=supervisor.token,
        )
    if not args.out:
        print(f"sweep directory: {out}")
    rows = [(p.label, p.area_rbe, p.tpi_ns, p.levels) for p in points]
    print(render_table(("config", "area_rbe", "tpi_ns", "levels"), rows))
    if supervisor.triggered:
        return _drain_notice(supervisor, out / SWEEP_JOURNAL_NAME)
    if run.failed:
        if not args.keep_going:
            run.raise_first_failure()
        print(f"{len(run.failed)} design point(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    samples, source = load_run_metrics(args.run_dir)
    if args.format == "json":
        print(json.dumps({"source": source, "metrics": samples}, indent=2))
    else:
        print(render_metrics(samples, source))
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    records = load_run_spans(args.run_dir)
    if args.format == "json":
        print(json.dumps(records, indent=2))
    else:
        print(render_spans(records, limit=args.limit))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    target = Path(args.directory)
    if not target.is_dir():
        raise IntegrityError(
            f"{args.directory}: not a directory; verify needs a results "
            f"tree written by repro report/sweep/serve"
        )
    if args.repair:
        outcome = verify_and_repair(args.directory, workers=args.workers)
        if args.format == "json":
            print(json.dumps(outcome.to_record(), indent=2))
        else:
            print(outcome.render())
        return 0 if outcome.clean else 1
    report = verify_tree(args.directory, repair=False)
    if report.n_directories == 0:
        # An empty (or never-managed) tree verifying "clean" would be
        # a silently meaningless success; refuse it as a typed error.
        raise IntegrityError(
            f"{args.directory}: no integrity records found — nothing to "
            f"verify; was this directory written by repro report/sweep/serve?"
        )
    if args.format == "json":
        print(json.dumps(report.to_record(), indent=2))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.serve:
        serve_result = run_serve_chaos(
            args.out,
            seed=args.seed,
            rounds=args.rounds,
            workers=args.workers if args.workers is not None else 2,
            scale=args.scale,
        )
        if args.format == "json":
            print(json.dumps(serve_result.to_record(), indent=2))
        else:
            print(serve_result.render())
        return 0 if serve_result.passed else 1
    ids = args.ids.split(",") if args.ids else None
    result = run_chaos(
        args.out,
        seed=args.seed,
        rounds=args.rounds,
        ids=ids,
        scale=args.scale,
        workers=args.workers,
    )
    if args.format == "json":
        print(json.dumps(result.to_record(), indent=2))
    else:
        print(result.render())
    return 0 if result.converged else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    policy = ServePolicy(
        deadline_s=args.deadline,
        max_active=args.max_active,
        max_waiting=args.max_waiting,
    )
    return run_serve(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        policy=policy,
    )


#: Default lint targets, filtered to those that exist under the cwd.
LINT_DEFAULT_PATHS = ("src", "benchmarks", "examples")


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        rows = [
            (rule.rule_id, rule.name, rule.severity, rule.rationale)
            for rule in all_rules()
        ]
        print(render_table(("rule", "name", "severity", "rationale"), rows))
        return 0
    paths = args.paths or [
        path for path in LINT_DEFAULT_PATHS if Path(path).is_dir()
    ]
    if not paths:
        raise LintError(
            "no lint targets: pass paths explicitly or run from a directory "
            f"containing {', '.join(LINT_DEFAULT_PATHS)}"
        )
    report = lint_paths(
        paths,
        select=args.select.split(",") if args.select else None,
        ignore=args.ignore.split(",") if args.ignore else None,
        workers=args.workers,
        program=args.program,
        cache=None if args.no_cache else args.cache_file,
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_human(report))
    return 0 if report.clean else 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tradeoffs in Two-Level On-Chip Caching'",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="raise library errors with full tracebacks instead of 'error: …'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. fig5, table1")
    run.add_argument("--scale", type=float, default=None, help="trace scale")
    run.set_defaults(func=_cmd_run)

    plot = sub.add_parser("plot", help="draw one experiment as ASCII log-log")
    plot.add_argument("experiment_id", help="a TPI-vs-area figure, e.g. fig5")
    plot.add_argument("--scale", type=float, default=None, help="trace scale")
    plot.add_argument("--width", type=int, default=72)
    plot.add_argument("--height", type=int, default=22)
    plot.set_defaults(func=_cmd_plot)

    def add_config_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="gcc1")
        p.add_argument("--scale", type=float, default=None)
        p.add_argument("--l1-kb", type=int, default=8)
        p.add_argument("--l2-kb", type=int, default=0)
        p.add_argument("--l2-assoc", type=int, default=4)
        p.add_argument("--exclusive", action="store_true")
        p.add_argument("--dual-ported", action="store_true")
        p.add_argument("--off-chip-ns", type=float, default=50.0)

    ev = sub.add_parser("eval", help="evaluate one configuration")
    add_config_args(ev)
    ev.set_defaults(func=_cmd_eval)

    env = sub.add_parser("envelope", help="best-performance envelope")
    add_config_args(env)
    env.set_defaults(func=_cmd_envelope)

    wl = sub.add_parser("workloads", help="describe the workload models")
    wl.add_argument("--scale", type=float, default=0.1)
    wl.set_defaults(func=_cmd_workloads)

    def add_runner_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--resume",
            action="store_true",
            help="replay the run journal and skip completed units",
        )
        p.add_argument(
            "--keep-going",
            action="store_true",
            help="isolate per-unit failures into FAILURES.json and continue",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="S",
            help="per-unit wall-clock budget in seconds",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="extra attempts per unit for transient failures",
        )
        p.add_argument(
            "--workers",
            default=None,
            metavar="N",
            help="run units in N worker processes ('auto' = one per CPU; "
            "default: serial); output is identical to a serial run",
        )
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="record METRICS.jsonl + SPANS.jsonl into the run "
            "directory (volatile artefacts; result bytes unchanged)",
        )

    report = sub.add_parser(
        "report", help="regenerate experiments into a results directory"
    )
    report.add_argument("--out", required=True, help="output directory")
    report.add_argument(
        "--ids", default="", help="comma-separated experiment ids (default: all)"
    )
    report.add_argument("--scale", type=float, default=None)
    add_runner_args(report)
    report.set_defaults(func=_cmd_report)

    sw = sub.add_parser(
        "sweep", help="evaluate the design space through the resilient runner"
    )
    add_config_args(sw)
    sw.add_argument("--out", default="", help="directory for journal + sweep.tsv")
    add_runner_args(sw)
    sw.add_argument(
        "--profile",
        action="store_true",
        help="write a cProfile profiles/<unit>.prof per design point "
        "(pstats format; load with pstats.Stats)",
    )
    sw.set_defaults(func=_cmd_sweep)

    metrics = sub.add_parser(
        "metrics", help="print a run directory's metrics"
    )
    metrics.add_argument(
        "run_dir",
        help="a directory written by repro report/sweep (METRICS.jsonl "
        "when the run recorded telemetry, else synthesized from its "
        "journal)",
    )
    metrics.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    spans = sub.add_parser(
        "spans", help="print a run directory's span tree"
    )
    spans.add_argument(
        "run_dir", help="a directory written with --telemetry (SPANS.jsonl)"
    )
    spans.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="show at most N spans (default: all)",
    )
    spans.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    spans.set_defaults(func=_cmd_spans)

    verify = sub.add_parser(
        "verify", help="verify artefact integrity under a results tree"
    )
    verify.add_argument("directory", help="results tree to verify")
    verify.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt artefacts and replay the affected runs "
        "from their RUN.json recipes",
    )
    verify.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    verify.add_argument(
        "--workers",
        default=None,
        metavar="N",
        help="worker processes for repair re-runs ('auto' = one per CPU)",
    )
    verify.set_defaults(func=_cmd_verify)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection soak with convergence check"
    )
    chaos.add_argument("--out", required=True, help="soak output directory")
    chaos.add_argument(
        "--serve",
        action="store_true",
        help="soak a live repro serve instance (pool kills, poisoned memo "
        "entries, slow workers) instead of the batch report path",
    )
    chaos.add_argument("--seed", type=int, default=0, help="RNG seed")
    chaos.add_argument(
        "--rounds", type=int, default=4, help="faulted report passes (default: 4)"
    )
    chaos.add_argument(
        "--ids", default="", help="comma-separated experiment ids (default: all)"
    )
    chaos.add_argument(
        "--scale", type=float, default=0.05, help="trace scale (default: 0.05)"
    )
    chaos.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    chaos.add_argument(
        "--workers",
        default=None,
        metavar="N",
        help="worker processes for the report passes ('auto' = one per CPU)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve", help="answer design-space queries over HTTP (see docs/api.md)"
    )
    serve.add_argument(
        "--store",
        default="serve-store",
        help="memo store + journal directory (default: serve-store)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument(
        "--workers",
        default="auto",
        metavar="N",
        help="compute pool size ('auto' = one per CPU, 'serial' = in-process; "
        "default: auto)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        metavar="S",
        help="per-request compute budget in seconds (default: 60)",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=4,
        metavar="N",
        help="concurrent cold-compute requests before queueing (default: 4)",
    )
    serve.add_argument(
        "--max-waiting",
        type=int,
        default=16,
        metavar="N",
        help="queued cold-compute requests before shedding (default: 16)",
    )
    serve.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint", help="run the repro static-analysis checkers"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        f"(default: {' '.join(LINT_DEFAULT_PATHS)} under the cwd)",
    )
    lint.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    lint.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--workers",
        default=None,
        metavar="N",
        help="lint files in N worker processes ('auto' = one per CPU)",
    )
    lint.add_argument(
        "--program",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="enable the whole-program phase (call graph + REP007-REP011)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the content-hash lint cache",
    )
    lint.add_argument(
        "--cache-file",
        default=DEFAULT_CACHE_NAME,
        metavar="PATH",
        help=f"lint cache location (default: {DEFAULT_CACHE_NAME})",
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exiting quietly is correct.
        return 0
    except AbortError as error:
        # Hard abort (second signal / drain deadline): distinct exit
        # code so wrappers can tell "stopped by request" from "failed";
        # everything journalled before the abort is still resumable.
        if args.debug:
            raise
        print(f"aborted: {error}", file=sys.stderr)
        return EXIT_ABORTED
    except ReproError as error:
        if args.debug:
            raise
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
