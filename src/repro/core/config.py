"""System configuration: one point in the paper's design space."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from ..cache.hierarchy import Policy
from ..errors import ConfigurationError
from ..timing.technology import TECH_05UM, Technology
from ..units import fmt_size

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """A complete on-chip memory system configuration.

    Attributes
    ----------
    l1_bytes:
        Capacity of *each* split first-level cache (instruction and
        data caches are equal-sized and direct-mapped, per the paper).
    l2_bytes:
        Capacity of the mixed second-level cache; 0 = single-level.
    l2_associativity:
        L2 ways (1 or 4 in the paper's studies).
    policy:
        Conventional or exclusive two-level content management.
    off_chip_ns:
        Off-chip miss service time (50 ns with a board cache, 200 ns
        without).
    l1_ports:
        RAM ports per L1 cell; 2 models §6's dual-ported cells at twice
        the cell area.
    issue_width:
        Instructions issued per L1 cycle; the paper pairs dual-ported
        L1s with a doubled issue rate.
    line_size:
        Line size in bytes (16 throughout the paper).
    tech:
        Technology point for the timing/area models.
    """

    l1_bytes: int
    l2_bytes: int = 0
    l2_associativity: int = 4
    policy: Policy = Policy.CONVENTIONAL
    off_chip_ns: float = 50.0
    l1_ports: int = 1
    issue_width: int = 1
    line_size: int = DEFAULT_LINE_SIZE
    tech: Technology = TECH_05UM

    def __post_init__(self) -> None:
        # Geometry construction validates sizes/associativity.
        CacheGeometry(self.l1_bytes, line_size=self.line_size, associativity=1)
        if self.l2_bytes:
            CacheGeometry(
                self.l2_bytes,
                line_size=self.line_size,
                associativity=self.l2_associativity,
            )
        if self.off_chip_ns <= 0:
            raise ConfigurationError("off_chip_ns must be positive")
        if self.l1_ports < 1:
            raise ConfigurationError("l1_ports must be >= 1")
        if self.issue_width < 1:
            raise ConfigurationError("issue_width must be >= 1")
        # Note: ``policy`` is ignored when there is no second level, so
        # an exclusive template with l2_bytes=0 is a valid single-level
        # configuration (this lets one template span a whole sweep).

    @property
    def has_l2(self) -> bool:
        return self.l2_bytes > 0

    @property
    def label(self) -> str:
        """The paper's point label, e.g. ``"32:256"`` (sizes in KB)."""
        l1 = self.l1_bytes // 1024 if self.l1_bytes >= 1024 else self.l1_bytes
        l2 = self.l2_bytes // 1024 if self.l2_bytes >= 1024 else self.l2_bytes
        return f"{l1}:{l2}"

    def describe(self) -> str:
        """Long human-readable description."""
        parts = [f"L1 2x{fmt_size(self.l1_bytes)} DM"]
        if self.has_l2:
            assoc = (
                "DM"
                if self.l2_associativity == 1
                else f"{self.l2_associativity}-way"
            )
            parts.append(f"L2 {fmt_size(self.l2_bytes)} {assoc} {self.policy.value}")
        if self.l1_ports > 1:
            parts.append(f"{self.l1_ports}-port L1")
        parts.append(f"off-chip {self.off_chip_ns:g}ns")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-safe representation (``RUN.json`` re-run metadata).

        Captures every design-space field; the technology point is not
        serialised — reconstruction assumes the default 0.5 µm process,
        which is the only one the CLI exposes.
        """
        return {
            "l1_bytes": self.l1_bytes,
            "l2_bytes": self.l2_bytes,
            "l2_associativity": self.l2_associativity,
            "policy": self.policy.name,
            "off_chip_ns": self.off_chip_ns,
            "l1_ports": self.l1_ports,
            "issue_width": self.issue_width,
            "line_size": self.line_size,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemConfig":
        """Rebuild a configuration serialised by :meth:`to_dict`."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"malformed config document: expected an object, "
                f"got {type(payload).__name__}"
            )
        try:
            policy = Policy[str(payload.get("policy", Policy.CONVENTIONAL.name))]
        except KeyError:
            raise ConfigurationError(
                f"unknown cache policy {payload.get('policy')!r}"
            ) from None
        try:
            return cls(
                l1_bytes=int(payload["l1_bytes"]),
                l2_bytes=int(payload.get("l2_bytes", 0)),
                l2_associativity=int(payload.get("l2_associativity", 4)),
                policy=policy,
                off_chip_ns=float(payload.get("off_chip_ns", 50.0)),
                l1_ports=int(payload.get("l1_ports", 1)),
                issue_width=int(payload.get("issue_width", 1)),
                line_size=int(payload.get("line_size", DEFAULT_LINE_SIZE)),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"malformed config document: missing {missing}"
            ) from None
        except (TypeError, ValueError):
            raise ConfigurationError(
                "malformed config document: non-numeric dimension"
            ) from None

    def single_level(self) -> "SystemConfig":
        """This configuration with the second level removed."""
        return replace(self, l2_bytes=0, policy=Policy.CONVENTIONAL)

    def dual_ported(self) -> "SystemConfig":
        """§6's variant: dual-ported L1 cells and doubled issue rate."""
        return replace(self, l1_ports=2, issue_width=2)
