"""The paper's §2.5 execution-time model (time per instruction).

The processor issues ``issue_width`` instructions per L1 cycle when no
miss is outstanding (CPI = 1 per issue slot), and the machine cycle time
*is* the L1 cache cycle time.  A line moves as 8-byte transfers, so a
``line_size``-byte line takes ``k = line_size/8`` of them (the paper's
16-byte lines give k = 2).  Penalties:

* L1 miss, L2 hit: one L2 cycle to probe and move the first 8 bytes,
  k-1 more L2 cycles for the rest, and one L1 cycle for the final
  (non-overlapped) L1 write — ``k·T_L2 + T_L1`` (= ``2·T_L2 + T_L1``
  in the paper).
* L2 miss: one L2 cycle to probe, the off-chip service time, k L2
  cycles to write the refill through, and the final L1 write —
  ``T_offchip + (k+1)·T_L2 + T_L1`` (the paper's ``+3·T_L2``).
* Single-level miss: the same shape with the L2 probe terms removed —
  ``T_offchip + T_L1`` (documented assumption; see DESIGN.md §6).

Both the L2 cycle time and the off-chip time are rounded **up** to the
next multiple of the L1 cycle (a synchronous pipeline cannot use a
fractional cycle), which is why Figure 2's L2 latencies are stepped.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.results import HierarchyStats
from ..errors import ConfigurationError
from ..timing.optimal import optimal_timing
from ..units import round_up_to_multiple
from .config import SystemConfig

__all__ = ["SystemTimings", "TpiBreakdown", "system_timings", "compute_tpi"]


@dataclass(frozen=True)
class SystemTimings:
    """Resolved cycle times (ns) for one configuration."""

    l1_cycle_ns: float
    l1_access_ns: float
    l2_raw_cycle_ns: float
    l2_cycle_ns: float
    l2_raw_access_ns: float
    off_chip_ns: float
    #: 8-byte transfers per line (2 for the paper's 16-byte lines).
    transfers_per_line: int = 2

    @property
    def l2_cycles(self) -> int:
        """L2 cycle time in (whole) processor cycles."""
        if self.l2_cycle_ns == 0.0:
            return 0
        return int(round(self.l2_cycle_ns / self.l1_cycle_ns))

    @property
    def l2_hit_penalty_ns(self) -> float:
        """L1-miss/L2-hit penalty: k·T_L2 + T_L1."""
        return self.transfers_per_line * self.l2_cycle_ns + self.l1_cycle_ns

    @property
    def l2_miss_penalty_ns(self) -> float:
        """L2-miss penalty: T_offchip + (k+1)·T_L2 + T_L1."""
        return (
            self.off_chip_ns
            + (self.transfers_per_line + 1) * self.l2_cycle_ns
            + self.l1_cycle_ns
        )

    @property
    def single_level_miss_penalty_ns(self) -> float:
        """Single-level miss penalty: T_offchip + T_L1."""
        return self.off_chip_ns + self.l1_cycle_ns


def system_timings(config: SystemConfig) -> SystemTimings:
    """Resolve all cycle times for ``config`` via the timing model."""
    l1 = optimal_timing(
        config.l1_bytes, 1, line_size=config.line_size, tech=config.tech
    )
    l1_cycle = l1.cycle_ns
    if config.has_l2:
        l2 = optimal_timing(
            config.l2_bytes,
            config.l2_associativity,
            line_size=config.line_size,
            tech=config.tech,
        )
        l2_raw_cycle = l2.cycle_ns
        l2_raw_access = l2.access_ns
        l2_cycle = round_up_to_multiple(l2_raw_cycle, l1_cycle)
    else:
        l2_raw_cycle = l2_raw_access = l2_cycle = 0.0
    off_chip = round_up_to_multiple(config.off_chip_ns, l1_cycle)
    return SystemTimings(
        l1_cycle_ns=l1_cycle,
        l1_access_ns=l1.access_ns,
        l2_raw_cycle_ns=l2_raw_cycle,
        l2_cycle_ns=l2_cycle,
        l2_raw_access_ns=l2_raw_access,
        off_chip_ns=off_chip,
        transfers_per_line=max(1, config.line_size // 8),
    )


@dataclass(frozen=True)
class TpiBreakdown:
    """Execution-time decomposition for one (config, workload) pair."""

    timings: SystemTimings
    base_ns: float
    l2_hit_ns: float
    off_chip_ns: float
    n_instructions: int

    @property
    def total_ns(self) -> float:
        """Total execution time."""
        return self.base_ns + self.l2_hit_ns + self.off_chip_ns

    @property
    def tpi_ns(self) -> float:
        """Time per instruction — the paper's figure of merit."""
        return self.total_ns / self.n_instructions

    @property
    def cpi(self) -> float:
        """Clocks per instruction at the L1-determined clock."""
        return self.tpi_ns / self.timings.l1_cycle_ns

    @property
    def memory_fraction(self) -> float:
        """Fraction of execution time spent servicing cache misses."""
        if self.total_ns == 0.0:
            return 0.0
        return (self.l2_hit_ns + self.off_chip_ns) / self.total_ns


def compute_tpi(config: SystemConfig, stats: HierarchyStats) -> TpiBreakdown:
    """Apply the §2.5 equations to simulation results.

    Raises
    ------
    ConfigurationError
        If ``stats`` came from a different hierarchy shape than
        ``config`` describes (L2 present vs absent).
    """
    if stats.has_l2 != config.has_l2:
        raise ConfigurationError(
            "stats and config disagree about the presence of a second level"
        )
    timings = system_timings(config)
    base = stats.n_instructions * timings.l1_cycle_ns / config.issue_width
    if config.has_l2:
        l2_hit_time = stats.l2_hits * timings.l2_hit_penalty_ns
        off_chip_time = stats.l2_misses * timings.l2_miss_penalty_ns
    else:
        l2_hit_time = 0.0
        off_chip_time = stats.l1_misses * timings.single_level_miss_penalty_ns
    return TpiBreakdown(
        timings=timings,
        base_ns=base,
        l2_hit_ns=l2_hit_time,
        off_chip_ns=off_chip_time,
        n_instructions=stats.n_instructions,
    )
