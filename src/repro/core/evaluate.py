"""Combine miss rates, timing and area into one evaluated design point."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

from ..area.model import optimal_cache_area
from ..cache.hierarchy import Policy, simulate_hierarchy
from ..cache.results import HierarchyStats
from ..traces.address import Trace
from ..traces.store import get_trace
from .config import SystemConfig
from .tpi import TpiBreakdown, compute_tpi

__all__ = ["SystemPerformance", "evaluate", "system_area_rbe"]


@dataclass(frozen=True)
class SystemPerformance:
    """One evaluated point of the design space: TPI vs area."""

    config: SystemConfig
    workload: str
    stats: HierarchyStats
    tpi: TpiBreakdown
    area_rbe: float

    @property
    def tpi_ns(self) -> float:
        return self.tpi.tpi_ns

    @property
    def label(self) -> str:
        return self.config.label

    def __repr__(self) -> str:
        return (
            f"SystemPerformance({self.workload} {self.label}: "
            f"tpi={self.tpi_ns:.2f}ns area={self.area_rbe:.0f}rbe)"
        )


def system_area_rbe(config: SystemConfig) -> float:
    """Total on-chip cache area: two L1 arrays plus the optional L2.

    The L1 caches use ``config.l1_ports``-ported cells; the L2 always
    uses single-ported 6T cells (§6 of the paper).
    """
    l1 = optimal_cache_area(
        config.l1_bytes,
        associativity=1,
        ports=config.l1_ports,
        line_size=config.line_size,
        tech=config.tech,
    )
    total = 2.0 * l1.total
    if config.has_l2:
        l2 = optimal_cache_area(
            config.l2_bytes,
            associativity=config.l2_associativity,
            ports=1,
            line_size=config.line_size,
            tech=config.tech,
        )
        total += l2.total
    return total


@lru_cache(maxsize=65536)
def _cached_stats(
    trace: Trace,
    l1_bytes: int,
    l2_bytes: int,
    l2_associativity: int,
    policy: Policy,
    line_size: int,
) -> HierarchyStats:
    return simulate_hierarchy(
        trace,
        l1_bytes,
        l2_bytes,
        l2_associativity=l2_associativity,
        policy=policy,
        line_size=line_size,
    )


def evaluate(
    config: SystemConfig, workload: Union[str, Trace], scale: "float | None" = None
) -> SystemPerformance:
    """Evaluate ``config`` on ``workload``.

    Parameters
    ----------
    config:
        The design point.
    workload:
        A benchmark name (resolved through the memoised trace store) or
        an explicit :class:`~repro.traces.address.Trace`.
    scale:
        Trace scale when ``workload`` is a name; ``None`` uses the
        environment default.

    Notes
    -----
    Simulation results are memoised on (trace identity, cache shape,
    policy) — the miss counts do not depend on off-chip time, port
    count, or issue width, so e.g. the 50 ns and 200 ns studies share
    one set of simulations.
    """
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stats = _cached_stats(
        trace,
        config.l1_bytes,
        config.l2_bytes,
        config.l2_associativity,
        config.policy if config.has_l2 else Policy.CONVENTIONAL,
        config.line_size,
    )
    return SystemPerformance(
        config=config,
        workload=trace.name,
        stats=stats,
        tpi=compute_tpi(config, stats),
        area_rbe=system_area_rbe(config),
    )
