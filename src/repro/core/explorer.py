"""Design-space enumeration and sweeping.

The paper's design space (§2.1): split direct-mapped L1 caches of equal
size from 1 KB to 256 KB, and an optional mixed L2 from 2 KB to 256 KB.
Following the configurations the paper actually plots, a two-level
point requires the L2 to be at least twice one L1 (otherwise the L2 is
smaller than the data it is meant to back and the paper notes the
configuration degenerates toward a victim cache).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import json

from ..cache.hierarchy import Policy, l1_miss_stream
from ..errors import RunnerError
from ..obs.profile import PROFILE_DIR_NAME
from ..obs.telemetry import Telemetry
from ..obs.telemetry import current as current_telemetry
from ..runner import (
    CancelToken,
    PoolRunner,
    ResourceWatchdog,
    RetryPolicy,
    RunJournal,
    Runner,
    RunResult,
    RunUnit,
    resolve_workers,
    unit_key,
    untrack,
    write_manifest,
    write_text_atomic,
)
from ..runner.integrity import RUN_METADATA_NAME
from ..traces.address import Trace
from ..traces.store import get_trace
from ..units import kb
from .config import SystemConfig
from .evaluate import SystemPerformance, evaluate

__all__ = [
    "standard_l1_sizes",
    "standard_l2_sizes",
    "design_space",
    "default_sweep_dir",
    "sweep",
    "run_sweep",
    "run_sweep_dir",
    "SweepPoint",
    "as_point",
    "SWEEP_JOURNAL_NAME",
    "SWEEP_TABLE_NAME",
    "SWEEP_FAILURES_NAME",
]

#: File names used inside a sweep output directory.
SWEEP_JOURNAL_NAME = "sweep.journal.jsonl"
SWEEP_TABLE_NAME = "sweep.tsv"
SWEEP_FAILURES_NAME = "FAILURES.json"

_MIN_KB = 1
_MAX_KB = 256


def standard_l1_sizes() -> List[int]:
    """Paper L1 sizes: 1 KB … 256 KB (bytes, per cache)."""
    sizes = []
    size = _MIN_KB
    while size <= _MAX_KB:
        sizes.append(kb(size))
        size *= 2
    return sizes


def standard_l2_sizes(l1_bytes: int) -> List[int]:
    """Paper L2 sizes valid for ``l1_bytes`` L1s: 0 plus 2·L1 … 256 KB."""
    sizes = [0]
    size = 2 * l1_bytes
    while size <= kb(_MAX_KB):
        sizes.append(size)
        size *= 2
    return sizes


def design_space(
    base: Optional[SystemConfig] = None,
    l1_sizes: Optional[Sequence[int]] = None,
    l2_sizes: Optional[Sequence[int]] = None,
    include_single_level: bool = True,
) -> List[SystemConfig]:
    """Enumerate the paper's design space as :class:`SystemConfig` points.

    Parameters
    ----------
    base:
        Template carrying everything except the sizes (policy,
        associativity, off-chip time, ports…).  Defaults to the
        baseline §4 system (4-way conventional L2, 50 ns off-chip).
    l1_sizes / l2_sizes:
        Explicit size lists (bytes); defaults follow the paper.  When
        ``l2_sizes`` is given it is filtered per L1 to keep L2 ≥ 2·L1.
    include_single_level:
        Include the ``l1:0`` configurations.
    """
    if base is None:
        base = SystemConfig(l1_bytes=kb(1))
    configs: List[SystemConfig] = []
    for l1 in l1_sizes if l1_sizes is not None else standard_l1_sizes():
        if l2_sizes is not None:
            candidates = [s for s in l2_sizes if s == 0 or s >= 2 * l1]
        else:
            candidates = standard_l2_sizes(l1)
        for l2 in candidates:
            if l2 == 0:
                if not include_single_level:
                    continue
                configs.append(
                    replace(base, l1_bytes=l1, l2_bytes=0, policy=Policy.CONVENTIONAL)
                )
            else:
                configs.append(replace(base, l1_bytes=l1, l2_bytes=l2))
    return configs


@dataclass(frozen=True)
class SweepPoint:
    """Journal-persistable summary of one evaluated design point.

    A full :class:`~repro.core.evaluate.SystemPerformance` carries
    simulator state that does not round-trip through JSON; this is the
    slice a resumed sweep can restore without re-simulating.
    """

    label: str
    workload: str
    area_rbe: float
    tpi_ns: float
    levels: str

    def to_record(self) -> dict:
        return {
            "label": self.label,
            "workload": self.workload,
            "area_rbe": self.area_rbe,
            "tpi_ns": self.tpi_ns,
            "levels": self.levels,
        }

    @classmethod
    def from_record(cls, record: dict) -> "SweepPoint":
        return cls(
            label=record["label"],
            workload=record["workload"],
            area_rbe=float(record["area_rbe"]),
            tpi_ns=float(record["tpi_ns"]),
            levels=record["levels"],
        )


def as_point(value: Union[SystemPerformance, SweepPoint]) -> SweepPoint:
    """Normalise fresh and journal-restored sweep values to one shape."""
    if isinstance(value, SweepPoint):
        return value
    return SweepPoint(
        label=value.label,
        workload=value.workload,
        area_rbe=value.area_rbe,
        tpi_ns=value.tpi_ns,
        levels="2-level" if value.config.has_l2 else "1-level",
    )


#: Traces passed to a sweep as explicit objects (rather than workload
#: names), keyed by name.  The registry makes the picklable unit bodies
#: below resolvable in any process: the parent registers before running
#: serially, the pool initializer registers inside each worker.
_SHARED_TRACES: Dict[str, Trace] = {}


def _point_record(perf: "Union[SystemPerformance, SweepPoint]") -> dict:
    """Journal serialiser for sweep values (module-level: picklable)."""
    return as_point(perf).to_record()


@dataclass(frozen=True)
class _EvaluateRun:
    """Picklable body of one sweep unit: evaluate one configuration.

    ``workload`` is a name resolved through the memoised trace store,
    or — when ``shared`` — through :data:`_SHARED_TRACES`, populated in
    each process by the sweep's pool initializer (or the parent, for
    serial runs).  Shipping a name instead of the trace keeps per-unit
    pickling cheap regardless of trace size.
    """

    config: SystemConfig
    workload: str
    scale: Optional[float]
    shared: bool = False

    def __call__(self) -> SystemPerformance:
        # Hot-path instrumentation rides the ambient bundle the engine
        # activated (the shared DISABLED no-op otherwise).  Phases are
        # timed *around* the model calls — the model packages stay
        # clock-free (REP002) and time is only read inside the tracer
        # through its injected clock (REP012).
        telemetry = current_telemetry()
        if not self.shared:
            with telemetry.span("trace") as trace_span:
                trace = get_trace(self.workload, self.scale)
            telemetry.observe("repro_trace_seconds", trace_span.duration_s)
        else:
            trace = _SHARED_TRACES.get(self.workload)
            if trace is None:
                raise RunnerError(
                    f"shared trace {self.workload!r} is not registered in this "
                    f"process; the sweep pool initializer did not run"
                )
        with telemetry.span("simulate") as sim_span:
            perf = evaluate(self.config, trace)
        n_refs = perf.stats.n_refs
        telemetry.count("repro_refs_total", float(n_refs))
        telemetry.observe("repro_simulate_seconds", sim_span.duration_s)
        if sim_span.duration_s > 0:
            telemetry.gauge_max(
                "repro_refs_per_second", n_refs / sim_span.duration_s
            )
        return perf


def _sweep_worker_init(
    workload: Union[str, Trace],
    scale: Optional[float],
    l1_shapes: Sequence[Tuple[int, int]],
) -> None:
    """Pool initializer: warm this worker's trace and L1 filter caches.

    Runs once per worker process.  Generating (or receiving) the trace
    and running the memoised L1 filter pass for every (L1 size, line
    size) in the sweep up front means the per-unit work each worker
    does afterwards is only the L2 replay — the expensive shared
    prefix is computed once per worker, not once per unit.
    """
    if isinstance(workload, Trace):
        _SHARED_TRACES[workload.name] = workload
        trace = workload
    else:
        trace = get_trace(workload, scale)
    for l1_bytes, line_size in l1_shapes:
        l1_miss_stream(trace, l1_bytes, line_size)


def _sweep_units(
    workload: Union[str, Trace],
    configs: Sequence[SystemConfig],
    scale: Optional[float],
) -> List[RunUnit]:
    shared = not isinstance(workload, str)
    workload_name = workload if isinstance(workload, str) else workload.name
    if shared:
        _SHARED_TRACES[workload_name] = workload
    units = []
    for index, config in enumerate(configs):
        units.append(
            RunUnit(
                unit_id=f"{index:04d}:{config.label}",
                payload={
                    "index": index,
                    "workload": workload_name,
                    "scale": scale,
                    "config": config.describe(),
                },
                run=_EvaluateRun(config, workload_name, scale, shared=shared),
                to_record=_point_record,
                from_record=SweepPoint.from_record,
            )
        )
    return units


def run_sweep(
    workload: Union[str, Trace],
    configs: Sequence[SystemConfig],
    scale: Optional[float] = None,
    *,
    keep_going: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    journal_path: "Union[str, Path, None]" = None,
    resume: bool = False,
    workers: Union[None, int, str] = None,
    submit_order: Optional[Sequence[int]] = None,
    watchdog: Optional[ResourceWatchdog] = None,
    telemetry: Optional[Telemetry] = None,
    profile_dir: "Union[str, Path, None]" = None,
    cancel: Optional[CancelToken] = None,
) -> RunResult:
    """Evaluate configurations through the resilient engine.

    Each configuration is one journalled unit: with ``journal_path``
    set, an interrupted sweep resumed with ``resume=True`` restores
    finished points (as :class:`SweepPoint`) from the journal instead
    of re-simulating them.  ``keep_going`` isolates per-point failures;
    without it the run stops at the first failure (the caller decides
    whether to re-raise via ``RunResult.raise_first_failure``).

    ``workers`` selects the execution backend: ``None`` (default) runs
    serially; an integer or ``"auto"`` fans the configurations out over
    that many worker processes (:class:`~repro.runner.PoolRunner`),
    each pre-warmed with the sweep's trace and L1 filter passes.
    Results, journal contents, and failure manifests are deterministic:
    identical to the serial run whatever the worker count or completion
    order (wall-clock ``elapsed_s`` measurements aside).
    ``submit_order`` permutes submission order only (used by the
    differential tests to prove order independence).

    ``telemetry`` records per-unit spans and counters (merged across
    workers in the parallel case); ``profile_dir`` opts into per-unit
    :mod:`cProfile` capture.  Neither changes any result or artefact
    byte — the sweep's outputs are identical with telemetry on or off.

    ``cancel`` hooks the sweep into a lifecycle supervisor: once the
    token trips (first SIGTERM/SIGINT), the sweep drains — in-flight
    points finish and are journalled, queued points are left for a
    ``resume=True`` re-run — and the returned result marks itself
    ``interrupted``.
    """
    journal = (
        RunJournal.open(journal_path, resume=resume) if journal_path is not None else None
    )
    units = _sweep_units(workload, configs, scale)
    n_workers = resolve_workers(workers)
    profile_path = Path(profile_dir) if profile_dir is not None else None
    if n_workers is None:
        runner: "Union[Runner, PoolRunner]" = Runner(
            journal=journal,
            retry=RetryPolicy(max_attempts=retries + 1),
            timeout_s=timeout_s,
            keep_going=keep_going,
            telemetry=telemetry,
            profile_dir=profile_path,
            cancel=cancel,
        )
    else:
        l1_shapes = sorted({(c.l1_bytes, c.line_size) for c in configs})
        runner = PoolRunner(
            journal=journal,
            retry=RetryPolicy(max_attempts=retries + 1),
            timeout_s=timeout_s,
            keep_going=keep_going,
            workers=n_workers,
            initializer=_sweep_worker_init,
            initargs=(workload, scale, l1_shapes),
            submit_order=submit_order,
            watchdog=watchdog,
            telemetry=telemetry,
            profile_dir=profile_path,
            cancel=cancel,
        )
    return runner.run(units)


def default_sweep_dir(
    workload: str, template: SystemConfig, scale: Optional[float] = None
) -> Path:
    """The run directory a sweep gets when the caller names none.

    Resolution rule (documented in ``docs/api.md``): sweeps without an
    explicit output directory land under ``runs/`` in the working
    directory, named ``sweep-<workload>-<hash12>`` where the hash is
    the content key of the sweep's full configuration (workload, scale,
    template).  The name is *deterministic*: re-running the same sweep
    resumes the same directory instead of scattering journal files in
    the cwd, and two different sweeps can never collide.
    """
    key = unit_key(
        {
            "kind": "sweep",
            "workload": workload,
            "scale": scale,
            "config": template.to_dict(),
        }
    )
    return Path("runs") / f"sweep-{workload}-{key[:12]}"


def run_sweep_dir(
    out: Union[str, Path],
    workload: str,
    template: SystemConfig,
    *,
    scale: Optional[float] = None,
    keep_going: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    resume: bool = False,
    workers: Union[None, int, str] = None,
    watchdog: Optional[ResourceWatchdog] = None,
    telemetry: Union[bool, Telemetry] = False,
    profile: bool = False,
    cancel: Optional[CancelToken] = None,
) -> Tuple[RunResult, List[SweepPoint]]:
    """Sweep the paper's design space into a managed artefact directory.

    The directory holds everything a later ``repro verify --repair``
    needs: the sweep table (``sweep.tsv``) and failure manifest with
    sha256 sidecars, the unit journal, re-run metadata (``RUN.json``)
    describing how to reproduce the sweep, and a ``MANIFEST.json``
    binding them together.  ``resume=True`` restores finished points
    from the journal instead of re-simulating them.

    ``telemetry`` (True, or a pre-built bundle) additionally writes
    ``METRICS.jsonl`` / ``SPANS.jsonl`` into the directory — volatile
    artefacts, like the journal — and ``profile`` captures a per-unit
    cProfile under ``profiles/``.  Every result-bearing artefact stays
    byte-identical to a telemetry-off run.

    ``cancel`` (see :func:`run_sweep`) lets a lifecycle supervisor
    drain the sweep: the table, failure manifest, and directory
    manifest below are still written for everything that completed, so
    the directory stays verifiable and resumable after an interrupted
    run.
    """
    out_dir = Path(out)
    out_dir.mkdir(parents=True, exist_ok=True)
    bundle: Optional[Telemetry]
    if isinstance(telemetry, Telemetry):
        bundle = telemetry.bind(out_dir)
    elif telemetry:
        bundle = Telemetry().bind(out_dir)
    else:
        bundle = None
    guard = watchdog if watchdog is not None else ResourceWatchdog()
    if guard.telemetry is None:
        guard.telemetry = bundle
    guard.preflight_disk(out_dir)
    metadata = {
        "run": 1,
        "kind": "sweep",
        "workload": workload,
        "scale": scale,
        "config": template.to_dict(),
    }
    write_text_atomic(
        out_dir / RUN_METADATA_NAME,
        json.dumps(metadata, sort_keys=True) + "\n",
        track=True,
    )
    configs = design_space(template)
    result = run_sweep(
        workload,
        configs,
        scale=scale,
        keep_going=keep_going,
        timeout_s=timeout_s,
        retries=retries,
        journal_path=out_dir / SWEEP_JOURNAL_NAME,
        resume=resume,
        workers=workers,
        watchdog=guard,
        telemetry=bundle,
        profile_dir=(out_dir / PROFILE_DIR_NAME) if profile else None,
        cancel=cancel,
    )
    points = [as_point(value) for value in result.values()]
    lines = [
        f"{p.label}\t{p.workload}\t{p.area_rbe:.1f}\t{p.tpi_ns:.4f}\t{p.levels}"
        for p in points
    ]
    write_text_atomic(
        out_dir / SWEEP_TABLE_NAME,
        "\n".join(lines) + "\n" if lines else "",
        track=True,
    )
    failures_path = out_dir / SWEEP_FAILURES_NAME
    if result.failed:
        write_text_atomic(
            failures_path,
            json.dumps(result.failures_manifest(), indent=2) + "\n",
            track=True,
        )
    else:
        failures_path.unlink(missing_ok=True)
        untrack(failures_path)
    write_manifest(out_dir)
    return result, points


def sweep(
    workload: Union[str, Trace],
    configs: Sequence[SystemConfig],
    scale: Optional[float] = None,
    *,
    keep_going: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    workers: Union[None, int, str] = None,
) -> List[SystemPerformance]:
    """Evaluate every configuration on one workload.

    Simulation results and trace generation are memoised, so sweeping
    multiple related spaces (e.g. 50 ns then 200 ns off-chip) only pays
    for the distinct cache shapes once.  With ``workers`` set the
    configurations are evaluated by a process pool instead (memoisation
    then lives per worker, pre-warmed by the pool initializer) and the
    returned list is identical to the serial one.

    Runs through the resilient engine: by default the first failing
    configuration raises (as it always did); with ``keep_going=True``
    failing points are dropped from the returned list and the sweep
    continues.
    """
    result = run_sweep(
        workload,
        configs,
        scale=scale,
        keep_going=keep_going,
        timeout_s=timeout_s,
        retries=retries,
        workers=workers,
    )
    if result.failed and not keep_going:
        result.raise_first_failure()
    return result.values()
