"""Design-space enumeration and sweeping.

The paper's design space (§2.1): split direct-mapped L1 caches of equal
size from 1 KB to 256 KB, and an optional mixed L2 from 2 KB to 256 KB.
Following the configurations the paper actually plots, a two-level
point requires the L2 to be at least twice one L1 (otherwise the L2 is
smaller than the data it is meant to back and the paper notes the
configuration degenerates toward a victim cache).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Union

from ..cache.hierarchy import Policy
from ..traces.address import Trace
from ..units import kb
from .config import SystemConfig
from .evaluate import SystemPerformance, evaluate

__all__ = ["standard_l1_sizes", "standard_l2_sizes", "design_space", "sweep"]

_MIN_KB = 1
_MAX_KB = 256


def standard_l1_sizes() -> List[int]:
    """Paper L1 sizes: 1 KB … 256 KB (bytes, per cache)."""
    sizes = []
    size = _MIN_KB
    while size <= _MAX_KB:
        sizes.append(kb(size))
        size *= 2
    return sizes


def standard_l2_sizes(l1_bytes: int) -> List[int]:
    """Paper L2 sizes valid for ``l1_bytes`` L1s: 0 plus 2·L1 … 256 KB."""
    sizes = [0]
    size = 2 * l1_bytes
    while size <= kb(_MAX_KB):
        sizes.append(size)
        size *= 2
    return sizes


def design_space(
    base: Optional[SystemConfig] = None,
    l1_sizes: Optional[Sequence[int]] = None,
    l2_sizes: Optional[Sequence[int]] = None,
    include_single_level: bool = True,
) -> List[SystemConfig]:
    """Enumerate the paper's design space as :class:`SystemConfig` points.

    Parameters
    ----------
    base:
        Template carrying everything except the sizes (policy,
        associativity, off-chip time, ports…).  Defaults to the
        baseline §4 system (4-way conventional L2, 50 ns off-chip).
    l1_sizes / l2_sizes:
        Explicit size lists (bytes); defaults follow the paper.  When
        ``l2_sizes`` is given it is filtered per L1 to keep L2 ≥ 2·L1.
    include_single_level:
        Include the ``l1:0`` configurations.
    """
    if base is None:
        base = SystemConfig(l1_bytes=kb(1))
    configs: List[SystemConfig] = []
    for l1 in l1_sizes if l1_sizes is not None else standard_l1_sizes():
        if l2_sizes is not None:
            candidates = [s for s in l2_sizes if s == 0 or s >= 2 * l1]
        else:
            candidates = standard_l2_sizes(l1)
        for l2 in candidates:
            if l2 == 0:
                if not include_single_level:
                    continue
                configs.append(
                    replace(base, l1_bytes=l1, l2_bytes=0, policy=Policy.CONVENTIONAL)
                )
            else:
                configs.append(replace(base, l1_bytes=l1, l2_bytes=l2))
    return configs


def sweep(
    workload: Union[str, Trace],
    configs: Sequence[SystemConfig],
    scale: Optional[float] = None,
) -> List[SystemPerformance]:
    """Evaluate every configuration on one workload.

    Simulation results and trace generation are memoised, so sweeping
    multiple related spaces (e.g. 50 ns then 200 ns off-chip) only pays
    for the distinct cache shapes once.
    """
    return [evaluate(config, workload, scale=scale) for config in configs]
