"""The paper's primary contribution: area/time/miss-rate co-evaluation.

This package combines the three substrates — miss rates
(:mod:`repro.cache`), access/cycle times (:mod:`repro.timing`) and chip
area (:mod:`repro.area`) — into the paper's figure of merit, **time per
instruction (TPI, ns)** as a function of **chip area (rbe)**, and
computes best-performance envelopes over the two-level design space.

Public API
----------
:class:`~repro.core.config.SystemConfig`
    One point in the design space (L1/L2 sizes, associativity, policy,
    ports, off-chip service time).
:func:`~repro.core.evaluate.evaluate`
    TPI + area for a config on a workload.
:func:`~repro.core.explorer.sweep` and
:func:`~repro.core.explorer.design_space`
    Enumerate and evaluate whole design spaces (memoised).
:func:`~repro.core.envelope.best_envelope`
    The paper's best-performance staircase.
"""

from .config import SystemConfig
from .envelope import EnvelopePoint, best_envelope, envelope_tpi_at
from .evaluate import SystemPerformance, evaluate
from .explorer import design_space, standard_l1_sizes, standard_l2_sizes, sweep
from .tpi import SystemTimings, TpiBreakdown, compute_tpi, system_timings

__all__ = [
    "SystemConfig",
    "SystemTimings",
    "TpiBreakdown",
    "system_timings",
    "compute_tpi",
    "SystemPerformance",
    "evaluate",
    "design_space",
    "standard_l1_sizes",
    "standard_l2_sizes",
    "sweep",
    "EnvelopePoint",
    "best_envelope",
    "envelope_tpi_at",
]
