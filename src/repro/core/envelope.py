"""Best-performance envelopes (the paper's staircase lines).

Every figure in the paper draws, over a cloud of (area, TPI) points,
the *best performance envelope*: for each available chip area, the
lowest TPI achievable by any configuration fitting in that area.  The
envelope is the lower-left Pareto staircase of the point cloud.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from .evaluate import SystemPerformance

__all__ = ["EnvelopePoint", "best_envelope", "envelope_tpi_at"]


@dataclass(frozen=True)
class EnvelopePoint:
    """One corner of the best-performance staircase."""

    area_rbe: float
    tpi_ns: float
    performance: SystemPerformance

    @property
    def label(self) -> str:
        return self.performance.label


def best_envelope(points: Iterable[SystemPerformance]) -> List[EnvelopePoint]:
    """The Pareto staircase: configs not dominated in (area, TPI).

    A configuration is on the envelope iff no other configuration has
    both no more area and strictly lower TPI (ties in TPI keep the
    smaller-area config only).

    Returns the corners sorted by increasing area (hence strictly
    decreasing TPI).
    """
    ordered = sorted(points, key=lambda p: (p.area_rbe, p.tpi_ns))
    envelope: List[EnvelopePoint] = []
    best_tpi = math.inf
    for perf in ordered:
        if perf.tpi_ns < best_tpi - 1e-12:
            envelope.append(
                EnvelopePoint(
                    area_rbe=perf.area_rbe, tpi_ns=perf.tpi_ns, performance=perf
                )
            )
            best_tpi = perf.tpi_ns
    return envelope


def envelope_tpi_at(
    envelope: Sequence[EnvelopePoint], area_budget_rbe: float
) -> float:
    """Best TPI achievable within ``area_budget_rbe``.

    Returns ``math.inf`` when even the smallest configuration does not
    fit — the paper's staircases simply do not extend that far left.
    """
    best = math.inf
    for point in envelope:
        if point.area_rbe <= area_budget_rbe:
            best = point.tpi_ns
        else:
            break
    return best
