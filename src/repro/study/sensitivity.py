"""Sensitivity analyses around the paper's fixed parameters.

The paper pins several knobs (16-byte lines, 50/200 ns off-chip, 25 %
warmup in this reproduction).  These helpers sweep each one so the
ablation benchmarks can show how robust the conclusions are:

* :func:`off_chip_sensitivity` — the envelope's best TPI at fixed area
  budgets across off-chip service times: two-level caching matters more
  the slower memory gets (generalising §7 beyond 50/200 ns).
* :func:`line_size_sensitivity` — TPI of one configuration across line
  sizes, trading spatial prefetch against transfer time.
* :func:`warmup_sensitivity` — measured miss rate of one configuration
  across warmup fractions, validating the substitution of DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Union

from ..cache.hierarchy import simulate_hierarchy
from ..core.config import SystemConfig
from ..core.envelope import best_envelope, envelope_tpi_at
from ..core.explorer import design_space, sweep
from ..traces.address import Trace
from ..traces.store import get_trace
from .registry import Series

__all__ = [
    "off_chip_sensitivity",
    "line_size_sensitivity",
    "warmup_sensitivity",
]


def off_chip_sensitivity(
    workload: str,
    area_budgets_rbe: Sequence[float],
    off_chip_values_ns: Sequence[float] = (25.0, 50.0, 100.0, 200.0, 400.0),
    scale: Optional[float] = None,
) -> Series:
    """Best envelope TPI per (off-chip time, area budget), plus the
    relative advantage of allowing two levels at each point.

    The cache simulations are shared across off-chip values (miss
    behaviour does not depend on latency), so the sweep costs one
    simulation pass total.
    """
    rows = []
    for off_chip in off_chip_values_ns:
        template = SystemConfig(l1_bytes=1024, off_chip_ns=off_chip)
        perfs = sweep(workload, design_space(template), scale=scale)
        env_all = best_envelope(perfs)
        env_single = best_envelope([p for p in perfs if not p.config.has_l2])
        for budget in area_budgets_rbe:
            best_all = envelope_tpi_at(env_all, budget)
            best_single = envelope_tpi_at(env_single, budget)
            advantage = (
                (best_single / best_all - 1.0) * 100.0
                if best_all > 0 and best_single != float("inf")
                else 0.0
            )
            rows.append((off_chip, budget, best_all, best_single, advantage))
    return Series(
        name=f"{workload} off-chip sensitivity",
        columns=(
            "off_chip_ns",
            "area_budget_rbe",
            "best_tpi_ns",
            "best_single_level_tpi_ns",
            "two_level_advantage_%",
        ),
        rows=tuple(rows),
    )


def line_size_sensitivity(
    workload: str,
    base_config: SystemConfig,
    line_sizes: Sequence[int] = (16, 32, 64),
    scale: Optional[float] = None,
) -> Series:
    """TPI and miss rates of one configuration across line sizes.

    Larger lines prefetch spatially (fewer misses on sequential code)
    but move more data per miss (more transfer cycles) — the classic
    line-size tradeoff the paper fixes at 16 bytes.
    """
    from ..core.evaluate import evaluate

    rows = []
    for line_size in line_sizes:
        config = replace(base_config, line_size=line_size)
        perf = evaluate(config, workload, scale=scale)
        rows.append(
            (
                line_size,
                perf.stats.l1_miss_rate,
                perf.stats.global_miss_rate,
                perf.tpi.timings.l2_hit_penalty_ns,
                perf.tpi_ns,
            )
        )
    return Series(
        name=f"{workload} line-size sensitivity ({base_config.label})",
        columns=(
            "line_bytes",
            "l1_miss_rate",
            "global_miss_rate",
            "l2_hit_penalty_ns",
            "tpi_ns",
        ),
        rows=tuple(rows),
    )


def warmup_sensitivity(
    workload: Union[str, Trace],
    l1_bytes: int,
    l2_bytes: int = 0,
    fractions: Sequence[float] = (0.0, 0.1, 0.25, 0.5, 0.75),
    scale: Optional[float] = None,
) -> Series:
    """Measured miss rates across warmup fractions.

    The curve flattens once cold misses are out of the counted window —
    the justification for the DESIGN.md §5 warmup substitution.
    """
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    rows = []
    for fraction in fractions:
        stats = simulate_hierarchy(
            trace, l1_bytes, l2_bytes, 4, warmup_fraction=fraction
        )
        rows.append(
            (fraction, stats.l1_miss_rate, stats.global_miss_rate)
        )
    return Series(
        name=f"{trace.name} warmup sensitivity",
        columns=("warmup_fraction", "l1_miss_rate", "global_miss_rate"),
        rows=tuple(rows),
    )
