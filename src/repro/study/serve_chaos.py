"""Seeded chaos soak for `repro serve`: availability + byte-identity.

The batch soak (:mod:`repro.study.chaos`) proves a *results tree*
converges after arbitrary fault interleavings.  The serve soak proves
the *service* holds its contract while being actively sabotaged:

1. compute a fault-free serial reference answer for every query in the
   soak's request mix (plain :func:`repro.core.evaluate.evaluate` —
   no service, no pool, no memo);
2. for each round, draw a serve-side fault schedule from a seeded RNG
   (slow workers, mid-request pool deaths, poisoned memo writes,
   injected per-key failures), install it via ``REPRO_FAULTS``, rebuild
   the backend so pool workers inherit it, and fire a concurrent burst
   of requests at a live :class:`~repro.serve.harness.BackgroundServer`;
3. between rounds, bit-rot a surviving memo entry directly on disk;
4. after the rounds, a fault-free **availability pass** must answer
   every query 200.

Every single 200 — during the rounds, under any fault mix — must be
byte-identical to its serial reference; every refusal must be a typed
503/504 carrying ``Retry-After``; any other status, a missing header,
or one wrong byte fails the soak.  Schedules are drawn randomly but
recorded, so a failing seed replays exactly.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..core.config import SystemConfig
from ..core.evaluate import evaluate
from ..runner import faults
from ..serve import (
    BackgroundServer,
    ServePolicy,
    canonical_json,
    point_key,
    point_record,
)
from ..units import kb

__all__ = ["ServeChaosResult", "run_serve_chaos"]

#: The soak's query mix: small enough to keep a round fast, varied
#: enough to mix memo hits, cold computes, and coalesced duplicates.
_POINTS: Tuple[Tuple[int, int], ...] = ((1, 0), (1, 8), (2, 0), (2, 16), (4, 32))


@dataclass
class ServeChaosResult:
    """Everything one seeded serve soak did, and whether it held."""

    seed: int
    rounds: int
    schedules: List[str] = field(default_factory=list)
    rotted: List[str] = field(default_factory=list)
    requests: int = 0
    ok: int = 0
    refused_503: int = 0
    refused_504: int = 0
    quarantined: int = 0
    degraded_rounds: int = 0
    wrong_answers: List[str] = field(default_factory=list)
    missing_retry_after: List[str] = field(default_factory=list)
    unexpected: List[str] = field(default_factory=list)
    availability_ok: bool = False

    @property
    def passed(self) -> bool:
        """The soak's verdict: zero wrong answers, typed refusals only,
        and full availability once the faults stop."""
        return (
            not self.wrong_answers
            and not self.missing_retry_after
            and not self.unexpected
            and self.availability_ok
        )

    def to_record(self) -> dict:
        return {
            "schema": 1,
            "kind": "serve-chaos",
            "seed": self.seed,
            "rounds": self.rounds,
            "schedules": list(self.schedules),
            "rotted": list(self.rotted),
            "requests": self.requests,
            "ok": self.ok,
            "refused_503": self.refused_503,
            "refused_504": self.refused_504,
            "quarantined": self.quarantined,
            "degraded_rounds": self.degraded_rounds,
            "wrong_answers": list(self.wrong_answers),
            "missing_retry_after": list(self.missing_retry_after),
            "unexpected": list(self.unexpected),
            "availability_ok": self.availability_ok,
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [f"serve chaos soak seed={self.seed}: {self.rounds} round(s)"]
        for index, schedule in enumerate(self.schedules):
            lines.append(f"  round {index}: {schedule or '(no faults)'}")
        for target in self.rotted:
            lines.append(f"  bit rot: {target}")
        lines.append(
            f"  {self.requests} request(s): {self.ok} served, "
            f"{self.refused_503} shed/failed (503), "
            f"{self.refused_504} deadline (504), "
            f"{self.quarantined} memo entr(ies) quarantined, "
            f"{self.degraded_rounds} degraded round(s)"
        )
        if self.passed:
            lines.append(
                "held: every 200 byte-identical to serial compute, every "
                "refusal typed with Retry-After, full availability restored"
            )
        else:
            for key in self.wrong_answers:
                lines.append(f"  WRONG ANSWER: {key}")
            for key in self.missing_retry_after:
                lines.append(f"  refusal without Retry-After: {key}")
            for detail in self.unexpected:
                lines.append(f"  unexpected response: {detail}")
            if not self.availability_ok:
                lines.append("  availability pass FAILED after faults cleared")
            lines.append("FAILED: the service broke its contract under chaos")
        return "\n".join(lines)


def _payloads(scale: float) -> Dict[str, dict]:
    """The query mix, keyed by canonical hash (== served unit id)."""
    mix = {}
    for l1_kb, l2_kb in _POINTS:
        config = SystemConfig(l1_bytes=kb(l1_kb), l2_bytes=kb(l2_kb))
        key = point_key(config, "gcc1", scale)
        mix[key] = {
            "l1_kb": l1_kb,
            "l2_kb": l2_kb,
            "workload": "gcc1",
            "scale": scale,
        }
    return mix


def _references(payload_by_key: Dict[str, dict], scale: float) -> Dict[str, bytes]:
    """Fault-free serial answers: the bytes every 200 must match."""
    references = {}
    for key, payload in payload_by_key.items():
        config = SystemConfig(
            l1_bytes=kb(payload["l1_kb"]), l2_bytes=kb(payload["l2_kb"])
        )
        perf = evaluate(config, "gcc1", scale=scale)
        references[key] = canonical_json(point_record(perf)).encode("utf-8")
    return references


def _draw_schedule(
    rng: random.Random, keys: List[str]
) -> Tuple[str, "str | None"]:
    """One round's serve-side fault mix (possibly empty).

    Returns ``(schedule, doomed_key)``: when the round injects per-key
    failures, ``doomed_key``'s memo entry is evicted first so the
    request actually reaches the backend (a memo hit would dodge the
    fault) and the exhausted retries surface as a typed 503.
    """
    kind = rng.choice(
        ["none", "slow", "pooldeath", "poison", "fail", "poison+slow"]
    )
    if kind == "none":
        return "", None
    if kind == "slow":
        return f"slowworker=*:{rng.choice([0.1, 0.2, 0.3])}", None
    if kind == "pooldeath":
        return f"pooldeath=*:{rng.randint(1, 2)}", None
    if kind == "poison":
        return f"poisonmemo=*:{rng.randint(1, 2)}", None
    if kind == "fail":
        # Canonical keys are deterministic, so a per-key fault can
        # target one: enough injected failures to exhaust the retry
        # budget and surface as a typed 503.
        doomed = rng.choice(keys)
        return f"fail={doomed}:9", doomed
    return "poisonmemo=*:1,slowworker=*:0.1", None


def _evict(store: Path, key: str) -> None:
    """Drop a memo entry (and its sidecar): a clean cold miss."""
    path = store / "memo" / f"{key}.json"
    path.unlink(missing_ok=True)
    path.with_name(path.name + ".sha256").unlink(missing_ok=True)


def _rot_memo_entry(store: Path, rng: random.Random) -> "str | None":
    """Flip one bit in a surviving memo entry, behind the service's back."""
    memo = store / "memo"
    entries = sorted(
        p
        for p in memo.glob("*.json")
        if p.name != "MANIFEST.json" and p.stat().st_size > 0
    )
    if not entries:
        return None
    target = rng.choice(entries)
    data = bytearray(target.read_bytes())
    data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
    # repro: lint-ok[REP001] the soak deliberately rots the memo entry behind the atomic layer; never serving it is what this proves
    target.write_bytes(bytes(data))
    return target.name


def _check(
    result: ServeChaosResult,
    key: str,
    status: int,
    headers: Dict[str, str],
    body: bytes,
    reference: bytes,
) -> None:
    result.requests += 1
    if status == 200:
        result.ok += 1
        if body != reference:
            result.wrong_answers.append(key)
    elif status in (503, 504):
        if status == 503:
            result.refused_503 += 1
        else:
            result.refused_504 += 1
        if "retry-after" not in headers:
            result.missing_retry_after.append(key)
    else:
        result.unexpected.append(f"{key}: HTTP {status}")


def run_serve_chaos(
    out_dir: Union[str, Path],
    *,
    seed: int = 0,
    rounds: int = 4,
    requests_per_round: int = 8,
    workers: "Union[None, int, str]" = 2,
    scale: float = 0.02,
) -> ServeChaosResult:
    """Run one seeded serve soak (see module docstring).

    Never raises for injected damage — the returned result's
    :attr:`ServeChaosResult.passed` says whether the contract held.
    """
    store = Path(out_dir) / "store"
    payload_by_key = _payloads(scale)
    references = _references(payload_by_key, scale)
    keys = sorted(payload_by_key)
    rng = random.Random(seed)
    result = ServeChaosResult(seed=seed, rounds=rounds)
    policy = ServePolicy(
        deadline_s=60.0,
        backoff_s=0.02,
        breaker_cooldown_s=0.2,
        retry_after_s=0.5,
    )
    previous = os.environ.get(faults.ENV_VAR)
    try:
        with BackgroundServer(store, workers=workers, policy=policy) as server:
            for _ in range(rounds):
                schedule, doomed = _draw_schedule(rng, keys)
                result.schedules.append(schedule)
                if schedule:
                    os.environ[faults.ENV_VAR] = schedule
                else:
                    os.environ.pop(faults.ENV_VAR, None)
                # Reset counters and rebuild the backend so freshly
                # forked workers inherit this round's plan.
                faults.clear()
                server.call(server.app.reset_backend)
                picks = [rng.choice(keys) for _ in range(requests_per_round)]
                if doomed is not None:
                    _evict(store, doomed)
                    picks.append(doomed)
                with ThreadPoolExecutor(max_workers=4) as clients:
                    futures = [
                        (
                            key,
                            clients.submit(
                                server.request, "POST", "/v1/evaluate",
                                payload_by_key[key],
                            ),
                        )
                        for key in picks
                    ]
                    for key, future in futures:
                        status, headers, body = future.result()
                        _check(result, key, status, headers, body, references[key])
                if server.app.degraded_reason is not None:
                    result.degraded_rounds += 1
                rotted = _rot_memo_entry(store, rng)
                if rotted is not None:
                    result.rotted.append(rotted)

            # Availability pass: faults off, backend fresh — every
            # query must be served, whatever the rounds did.
            os.environ.pop(faults.ENV_VAR, None)
            faults.clear()
            server.call(server.app.reset_backend)
            final_ok = True
            for key in keys:
                status, headers, body = server.request(
                    "POST", "/v1/evaluate", payload_by_key[key]
                )
                _check(result, key, status, headers, body, references[key])
                if status != 200 or body != references[key]:
                    final_ok = False
            result.availability_ok = final_ok
            result.quarantined = server.app.memo.quarantined
    finally:
        if previous is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = previous
        faults.clear()
    return result
