"""Experiment objects, results, and the id → experiment registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .report import render_table

__all__ = [
    "Series",
    "ExperimentResult",
    "Experiment",
    "register",
    "get_experiment",
    "experiment_ids",
    "run_experiment",
]


@dataclass(frozen=True)
class Series:
    """One plotted line/table of an experiment (e.g. an envelope)."""

    name: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ExperimentError(
                    f"series {self.name!r}: row width {len(row)} != "
                    f"{len(self.columns)} columns"
                )

    def column(self, name: str) -> List[object]:
        """All values of one named column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ExperimentError(
                f"series {self.name!r} has no column {name!r}"
            ) from None
        return [row[index] for row in self.rows]


@dataclass(frozen=True)
class ExperimentResult:
    """All series recomputed for one paper exhibit."""

    experiment_id: str
    title: str
    series: Tuple[Series, ...]
    notes: str = ""

    def get_series(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        known = ", ".join(s.name for s in self.series)
        raise ExperimentError(f"no series {name!r}; available: {known}")

    def render(self) -> str:
        """Human-readable text rendition of every series."""
        blocks = [f"== {self.experiment_id}: {self.title} =="]
        if self.notes:
            blocks.append(self.notes)
        for series in self.series:
            blocks.append(f"-- {series.name} --")
            blocks.append(render_table(series.columns, series.rows))
        return "\n".join(blocks)


@dataclass(frozen=True)
class Experiment:
    """A registered, re-runnable reproduction of one table/figure."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[[Optional[float]], ExperimentResult] = field(repr=False)

    def run(self, scale: Optional[float] = None) -> ExperimentResult:
        """Recompute the exhibit; ``scale`` is the trace scale (if used)."""
        return self.runner(scale)


_REGISTRY: Dict[str, Experiment] = {}


def register(
    experiment_id: str,
    title: str,
    paper_reference: str,
) -> Callable[[Callable[[Optional[float]], ExperimentResult]], Experiment]:
    """Decorator registering a runner function as an experiment."""

    def wrap(runner: Callable[[Optional[float]], ExperimentResult]) -> Experiment:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        experiment = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            runner=runner,
        )
        _REGISTRY[experiment_id] = experiment
        return experiment

    return wrap


def experiment_ids() -> List[str]:
    """All registered ids, sorted naturally (fig2 before fig10)."""

    def natural(eid: str) -> Tuple[str, int]:
        prefix = eid.rstrip("0123456789")
        digits = eid[len(prefix):]
        return (prefix, int(digits) if digits else -1)

    return sorted(_REGISTRY, key=natural)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"fig5"``, ``"table1"``)."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(experiment_ids())}"
        ) from None


def run_experiment(
    experiment_id: str, scale: Optional[float] = None
) -> ExperimentResult:
    """Convenience wrapper: look up and run in one call."""
    return get_experiment(experiment_id).run(scale)
