"""Seeded chaos soak: hammer a report with faults, prove it converges.

The robustness claim of this repository is not "each mechanism has a
unit test" but "the *composition* survives": crashes mid-run, transient
failures, torn writes, bit rot, full disks, and killed workers — in any
interleaving — must leave a results tree that journals, integrity
verification, and the resume path can drive back to **byte-identical**
with an undisturbed run.  :func:`run_chaos` is that experiment:

1. produce a clean reference report in ``<out>/clean``;
2. soak ``<out>/soak``: for each round, draw a fault schedule from a
   seeded RNG (so every soak is exactly reproducible from its seed),
   install it via the ``REPRO_FAULTS`` grammar (which also reaches
   pool workers), and run the same report with ``--resume``;
3. after the rounds, inject direct bit rot into surviving artefacts —
   including, sometimes, the integrity records themselves;
4. converge: a fault-free resume pass, then
   :func:`~repro.study.repair.verify_and_repair`;
5. compare :func:`~repro.runner.integrity.tree_fingerprint` of both
   trees.  Convergence means zero differing deterministic bytes.

Faults are *drawn* randomly but *fire* deterministically — the
schedule is data (:class:`ChaosResult.schedules` records every round),
so a failing seed replays exactly.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import AbortError, ReproError
from ..obs.telemetry import DISABLED as _DISABLED_TELEMETRY, Telemetry
from ..runner import (
    ResourceWatchdog,
    Supervisor,
    WatchdogPolicy,
    faults,
    tree_fingerprint,
)
from ..runner.integrity import RUN_METADATA_NAME, SIDECAR_SUFFIX, is_volatile
from .registry import experiment_ids
from .repair import verify_and_repair
from .resultstore import write_report

__all__ = ["ChaosResult", "run_chaos"]

#: Fault kinds a soak round may draw.  ``delay`` is excluded (it only
#: slows the soak down); ``killworker`` and ``hang`` are drawn only
#: when the soak actually runs a pool (``hang`` is a worker-side wedge:
#: serially it is a no-op by design).  ``sigterm`` exercises the
#: lifecycle drain — a real shutdown signal lands mid-flight and the
#: round must stop gracefully with everything journalled.
_ROUND_KINDS = (
    "fail", "crash", "corrupt", "bitflip", "partial", "enospc", "sigterm"
)

#: Liveness limit the soak's pool rounds run under: a worker silent for
#: this long while marked running is declared hung and rescued.  Short,
#: because the injected ``hang`` wedge sleeps far longer than this.
_SOAK_HANG_TIMEOUT_S = 2.0


@dataclass
class ChaosResult:
    """Everything one seeded soak did, and whether it converged."""

    seed: int
    rounds: int
    schedules: List[str] = field(default_factory=list)
    bitrot: List[str] = field(default_factory=list)
    reran: List[str] = field(default_factory=list)
    quarantined: int = 0
    converged: bool = False
    mismatches: List[str] = field(default_factory=list)

    def to_record(self) -> dict:
        return {
            "schema": 1,
            "seed": self.seed,
            "rounds": self.rounds,
            "schedules": list(self.schedules),
            "bitrot": list(self.bitrot),
            "reran": list(self.reran),
            "quarantined": self.quarantined,
            "converged": self.converged,
            "mismatches": list(self.mismatches),
        }

    def render(self) -> str:
        lines = [
            f"chaos soak seed={self.seed}: {self.rounds} round(s)",
        ]
        for index, schedule in enumerate(self.schedules):
            lines.append(f"  round {index}: {schedule or '(no faults)'}")
        for target in self.bitrot:
            lines.append(f"  bit rot: {target}")
        lines.append(
            f"  repair: {self.quarantined} quarantined, "
            f"{len(self.reran)} director(ies) re-run"
        )
        if self.converged:
            lines.append("converged: soak tree byte-identical to clean run")
        else:
            lines.append(f"DIVERGED: {len(self.mismatches)} path(s) differ")
            for path in self.mismatches:
                lines.append(f"  differs: {path}")
        return "\n".join(lines)


def _random_schedule(
    rng: random.Random, unit_ids: List[str], with_pool: bool
) -> str:
    """Draw one round's fault specification (possibly empty)."""
    kinds = list(_ROUND_KINDS) + (["killworker", "hang"] if with_pool else [])
    n_faults = rng.randint(0, 2)
    parts = []
    used_kinds = set()
    for _ in range(n_faults):
        kind = rng.choice(kinds)
        if kind in used_kinds:
            continue  # one spec per kind: later entries would override
        used_kinds.add(kind)
        unit = rng.choice(unit_ids)
        if kind == "fail":
            parts.append(f"fail={unit}:{rng.randint(1, 2)}")
        elif kind == "enospc":
            parts.append(f"enospc={unit}:{rng.randint(1, 2)}")
        elif kind == "partial":
            parts.append(f"partial={unit}:{rng.randint(0, 64)}")
        elif kind == "hang":
            # Far beyond the soak's liveness limit: the wedge must be
            # rescued (kill + requeue), never waited out.
            parts.append(f"hang={unit}:30")
        else:
            parts.append(f"{kind}={unit}")
    return ",".join(parts)


def _bitrot_targets(soak: Path, rng: random.Random) -> List[Path]:
    """Pick up to two deterministic files to damage directly.

    ``RUN.json`` is spared: it *is* the repair recipe, the one artefact
    that cannot be regenerated from itself (its sidecar and the
    manifest still guard it against silent damage — verification
    reports it, repair just cannot replay it).
    """
    candidates = []
    for path in sorted(soak.rglob("*")):
        if not path.is_file() or "quarantine" in path.parts:
            continue
        base = (
            path.name[: -len(SIDECAR_SUFFIX)]
            if path.name.endswith(SIDECAR_SUFFIX)
            else path.name
        )
        if is_volatile(base) or base == RUN_METADATA_NAME:
            continue
        if path.stat().st_size == 0:
            continue
        candidates.append(path)
    if not candidates:
        return []
    return rng.sample(candidates, k=min(2, len(candidates)))


def _rot(path: Path, rng: random.Random) -> None:
    """Flip one bit or truncate ``path`` — silent post-write damage."""
    data = bytearray(path.read_bytes())
    if rng.random() < 0.5 and len(data) > 1:
        # repro: lint-ok[REP001] the soak deliberately rots bytes behind the atomic layer; surviving this is what the test proves
        path.write_bytes(bytes(data[: rng.randint(1, len(data) - 1)]))
    else:
        offset = rng.randrange(len(data))
        data[offset] ^= 1 << rng.randrange(8)
        # repro: lint-ok[REP001] the soak deliberately rots bytes behind the atomic layer; surviving this is what the test proves
        path.write_bytes(bytes(data))


def _soak_round(
    soak: Path,
    schedule: str,
    *,
    ids: Optional[List[str]],
    scale: Optional[float],
    workers: "Union[None, int, str]",
) -> None:
    """One faulted ``write_report`` pass; crashes/failures are expected.

    Every round runs under a :class:`~repro.runner.Supervisor`, so an
    injected ``sigterm`` lands exactly like an operator's Ctrl-C: the
    round drains (in-flight experiments finish and journal) instead of
    dying mid-write.  Pool rounds also run with a hang-capable watchdog
    so an injected ``hang`` wedge is rescued, not waited out.
    """
    previous = os.environ.get(faults.ENV_VAR)
    if schedule:
        os.environ[faults.ENV_VAR] = schedule
    pooled = workers not in (None, 0, "", "serial")
    guard = (
        ResourceWatchdog(WatchdogPolicy(hang_timeout_s=_SOAK_HANG_TIMEOUT_S))
        if pooled
        else None
    )
    try:
        with Supervisor() as supervisor:
            write_report(
                soak,
                ids=ids,
                scale=scale,
                resume=True,
                keep_going=True,
                retries=1,
                workers=workers,
                watchdog=guard,
                cancel=supervisor.token,
            )
    except faults.InjectedCrash:
        pass  # simulated kill mid-run; the journal survives
    except AbortError:
        pass  # drain overrun aborted hard; journalled units survive
    except ReproError:
        pass  # e.g. an injected failure surfacing through strict paths
    finally:
        if previous is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = previous
        faults.clear()


def _fault_evidence(soak: Path) -> int:
    """Journal entries showing a fault actually fired (retry or failure).

    The soak journal is the ground truth for "the injected fault was
    observed": a unit that failed, or needed more than one attempt,
    hit *something*.  Counting entries (not units) keeps repeat rounds
    visible — each appended record is one more observation.
    """
    journal_path = soak / "journal.jsonl"
    if not journal_path.exists():
        return 0
    evidence = 0
    for line in journal_path.read_text().splitlines():
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line mid-soak: not evidence either way
        if not isinstance(entry, dict) or "unit" not in entry:
            continue
        if entry.get("status") == "failed" or entry.get("attempts", 1) > 1:
            evidence += 1
    return evidence


def _diff_fingerprints(
    clean: Dict[str, str], soak: Dict[str, str]
) -> List[str]:
    paths = sorted(set(clean) | set(soak))
    return [
        path
        for path in paths
        if clean.get(path) != soak.get(path)
    ]


def run_chaos(
    out_dir: Union[str, Path],
    *,
    seed: int = 0,
    rounds: int = 4,
    ids: Optional[List[str]] = None,
    scale: Optional[float] = 0.05,
    workers: "Union[None, int, str]" = None,
    telemetry: Optional[Telemetry] = None,
) -> ChaosResult:
    """Run one seeded soak (see module docstring); never raises for
    injected damage — the returned :class:`ChaosResult` says whether
    the tree converged.

    ``telemetry`` (optional) receives per-round counters proving the
    injected faults were *observed*, not merely scheduled:
    ``repro_chaos_faults_scheduled_total{kind}`` counts what each
    round's schedule drew, ``repro_chaos_faults_observed_total`` counts
    the journal entries (failures or retries) those faults produced,
    and ``repro_chaos_quarantined_total`` / ``repro_chaos_reruns_total``
    count what the repair stage did about the damage.
    """
    out = Path(out_dir)
    clean_dir = out / "clean"
    soak_dir = out / "soak"
    unit_ids = list(ids) if ids is not None else experiment_ids()
    rng = random.Random(seed)
    result = ChaosResult(seed=seed, rounds=rounds)

    # Reference tree: same report, no faults.
    write_report(clean_dir, ids=ids, scale=scale, workers=workers)

    tel = telemetry if telemetry is not None else _DISABLED_TELEMETRY
    with_pool = workers not in (None, 0, "", "serial")
    for round_index in range(rounds):
        schedule = _random_schedule(rng, unit_ids, with_pool)
        result.schedules.append(schedule)
        for part in filter(None, schedule.split(",")):
            tel.count(
                "repro_chaos_faults_scheduled_total",
                kind=part.split("=", 1)[0],
            )
        evidence_before = _fault_evidence(soak_dir)
        with tel.span(
            "chaos_round", round=round_index, schedule=schedule
        ) as round_span:
            _soak_round(
                soak_dir, schedule, ids=ids, scale=scale, workers=workers
            )
            observed = max(0, _fault_evidence(soak_dir) - evidence_before)
            round_span.set(observed=observed)
        if observed:
            tel.count("repro_chaos_faults_observed_total", float(observed))

    # Fault-free resume pass: heal failed/missing units the rounds left.
    _soak_round(soak_dir, "", ids=ids, scale=scale, workers=workers)

    # Silent bit rot on the healed tree — sometimes on the integrity
    # records themselves — so the converge step below must *detect* the
    # damage (nothing re-runs these units on its own), quarantine it,
    # and regenerate from the re-run recipe.
    for target in _bitrot_targets(soak_dir, rng):
        _rot(target, rng)
        result.bitrot.append(str(target.relative_to(soak_dir)))

    outcome = verify_and_repair(soak_dir, workers=workers, telemetry=telemetry)
    result.quarantined = len(
        [f for f in outcome.report.findings if f.action.startswith("quarantined")]
    )
    result.reran = [str(path) for path in outcome.reran]
    if result.quarantined:
        tel.count("repro_chaos_quarantined_total", float(result.quarantined))
    if result.reran:
        tel.count("repro_chaos_reruns_total", float(len(result.reran)))

    mismatches = _diff_fingerprints(
        tree_fingerprint(clean_dir), tree_fingerprint(soak_dir)
    )
    result.mismatches = mismatches
    result.converged = not mismatches and outcome.clean
    return result


def write_chaos_record(result: ChaosResult, path: Union[str, Path]) -> None:
    """Persist a soak's record as JSON (handy for CI artefact upload)."""
    from ..runner import write_text_atomic

    write_text_atomic(
        path, json.dumps(result.to_record(), indent=2) + "\n", track=False
    )
