"""Verify-and-repair: regenerate artefacts that failed integrity checks.

:func:`~repro.runner.integrity.verify_tree` can *detect* corruption and
quarantine the damaged files, but only the code that produced an
artefact can bring it back.  Every managed run directory therefore
carries ``RUN.json`` — a tiny re-run recipe written by
:func:`~repro.study.resultstore.write_report` and
:func:`~repro.core.explorer.run_sweep_dir` — and this module closes the
loop: :func:`verify_and_repair` quarantines what is damaged, replays
each affected run through its normal resume path (journals make that
cheap — only the units whose artefacts vanished recompute), and
verifies again.

The recipe schema (``{"run": 1, ...}``) is deliberately minimal:

* ``kind: "report"`` — ``ids`` + ``scale`` for ``write_report``;
* ``kind: "sweep"`` — ``workload`` + ``scale`` + the template
  :meth:`~repro.core.config.SystemConfig.to_dict` for
  ``run_sweep_dir``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from ..core.config import SystemConfig
from ..core.explorer import run_sweep_dir
from ..errors import IntegrityError, ReproError
from ..runner.integrity import (
    RUN_METADATA_NAME,
    IntegrityReport,
    verify_tree,
)
from .resultstore import write_report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.telemetry import Telemetry

__all__ = ["RepairOutcome", "rerun_directory", "verify_and_repair"]

#: Schema version of the ``RUN.json`` re-run recipe.
RUN_SCHEMA = 1


def _load_recipe(directory: Path) -> dict:
    path = directory / RUN_METADATA_NAME
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise IntegrityError(
            f"{directory}: no {RUN_METADATA_NAME} re-run recipe; this "
            f"directory predates integrity tracking or was not written "
            f"by write_report/run_sweep_dir"
        ) from None
    except (OSError, json.JSONDecodeError) as error:
        raise IntegrityError(f"{path}: unreadable re-run recipe: {error}") from None
    if not isinstance(payload, dict) or payload.get("run") != RUN_SCHEMA:
        raise IntegrityError(
            f"{path}: unsupported re-run recipe "
            f"(expected {{'run': {RUN_SCHEMA}, ...}})"
        )
    return payload


def rerun_directory(
    directory: Union[str, Path],
    *,
    workers: "Union[None, int, str]" = None,
) -> str:
    """Re-execute the run that produced ``directory`` via its resume path.

    Reads the ``RUN.json`` recipe and replays the run with
    ``resume=True`` and ``keep_going=True``: units whose artefacts are
    intact are restored from the journal; units whose artefacts were
    quarantined or lost recompute and rewrite them (with fresh
    sidecars and manifest).  Returns the recipe kind.

    Raises
    ------
    IntegrityError
        When the recipe is missing, unreadable, or of an unknown kind.
    """
    run_dir = Path(directory)
    recipe = _load_recipe(run_dir)
    kind = recipe.get("kind")
    if kind == "report":
        write_report(
            run_dir,
            ids=recipe.get("ids"),
            scale=recipe.get("scale"),
            resume=True,
            keep_going=True,
            workers=workers,
        )
    elif kind == "sweep":
        template = SystemConfig.from_dict(recipe.get("config", {}))
        run_sweep_dir(
            run_dir,
            recipe.get("workload", "gcc1"),
            template,
            scale=recipe.get("scale"),
            resume=True,
            keep_going=True,
            workers=workers,
        )
    else:
        raise IntegrityError(
            f"{run_dir / RUN_METADATA_NAME}: unknown run kind {kind!r} "
            f"(expected 'report' or 'sweep')"
        )
    return str(kind)


@dataclass
class RepairOutcome:
    """What :func:`verify_and_repair` found and did."""

    #: The initial verification pass (``repair=True``: quarantines done,
    #: stale records rewritten).
    report: IntegrityReport
    #: Directories whose runs were replayed to regenerate artefacts.
    reran: List[Path] = field(default_factory=list)
    #: Damaged directories that could not be replayed (no usable
    #: ``RUN.json``), with the reason.
    skipped: List[str] = field(default_factory=list)
    #: Verification after the re-runs (None when nothing needed one).
    final: Optional[IntegrityReport] = None

    @property
    def clean(self) -> bool:
        """True when the tree ended the call fully verified."""
        if self.skipped:
            return False
        if self.final is not None:
            return self.final.clean
        return self.report.clean

    def to_record(self) -> dict:
        record = {
            "verify": self.report.to_record(),
            "reran": [str(path) for path in self.reran],
            "skipped": list(self.skipped),
            "clean": self.clean,
        }
        if self.final is not None:
            record["final"] = self.final.to_record()
        return record

    def render(self) -> str:
        lines = [self.report.render()]
        for path in self.reran:
            lines.append(f"reran: {path}")
        for reason in self.skipped:
            lines.append(f"skipped: {reason}")
        if self.final is not None:
            lines.append("after repair:")
            lines.append(self.final.render())
        return "\n".join(lines)


def _damaged_run_dirs(report: IntegrityReport) -> List[Path]:
    """Run directories that lost artefacts and need regeneration.

    Finding paths are relative to the verified root (see
    ``_verify_directory``), so they are re-anchored before use.
    """
    root = Path(report.root)
    dirs: List[Path] = []
    for finding in report.findings:
        if finding.kind not in ("corrupt-artifact", "missing-artifact"):
            continue
        directory = (root / finding.path).parent
        if directory not in dirs:
            dirs.append(directory)
    return dirs


def verify_and_repair(
    root: Union[str, Path],
    *,
    rerun: bool = True,
    workers: "Union[None, int, str]" = None,
    telemetry: Optional["Telemetry"] = None,
) -> RepairOutcome:
    """Verify a results tree, quarantine damage, and regenerate it.

    Three stages: (1) :func:`verify_tree` with ``repair=True`` — stale
    sidecars/manifests are rewritten, corrupt artefacts are moved to
    ``quarantine/``; (2) every directory that lost an artefact is
    replayed through :func:`rerun_directory` (skipped, and reported,
    when it carries no usable recipe); (3) a final :func:`verify_tree`
    proves the regenerated tree is intact.  ``telemetry`` (optional)
    receives the integrity counters of both verification passes.
    """
    report = verify_tree(root, repair=True, telemetry=telemetry)
    outcome = RepairOutcome(report=report)
    if not rerun:
        return outcome
    for directory in _damaged_run_dirs(report):
        try:
            rerun_directory(directory, workers=workers)
        except IntegrityError as error:
            outcome.skipped.append(str(error))
        except ReproError as error:
            outcome.skipped.append(f"{directory}: re-run failed: {error}")
        else:
            outcome.reran.append(directory)
    if outcome.reran or outcome.skipped or not report.clean:
        # Anything repaired — even purely in place — is proved intact
        # by a fresh pass, never assumed.
        outcome.final = verify_tree(root, repair=False, telemetry=telemetry)
    return outcome
