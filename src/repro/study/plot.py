"""ASCII log-log plotting for experiment series.

The paper's figures are log-log scatter/staircase plots of TPI (ns)
against area (rbe).  This module renders the same picture in a terminal
so `python -m repro plot fig5` shows the reproduction the way the paper
shows the original.

The renderer is deliberately simple: a fixed-size character grid, log
scales on both axes, one glyph per series, last-writer-wins on
collisions (series are drawn in order, so envelopes drawn last stay
visible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .registry import ExperimentResult, Series

__all__ = ["AsciiPlot", "plot_series", "plot_experiment"]

#: Glyphs assigned to successive series.
_GLYPHS = "ox*+#@%&"


@dataclass(frozen=True)
class AsciiPlot:
    """A rendered plot plus its legend."""

    lines: Tuple[str, ...]
    legend: Tuple[Tuple[str, str], ...]  # (glyph, series name)

    def render(self) -> str:
        body = "\n".join(self.lines)
        legend = "\n".join(f"  {glyph}  {name}" for glyph, name in self.legend)
        return f"{body}\n{legend}"


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Tick positions covering [lo, hi]: decades plus 2x/5x subticks
    when the span covers fewer than two decades (the paper's narrow TPI
    axes would otherwise show a single label)."""
    decades = []
    decade = 10 ** math.floor(math.log10(lo))
    while decade <= hi * 1.0000001:
        decades.append(decade)
        decade *= 10
    multipliers = [1.0] if hi / lo >= 100 else [1.0, 2.0, 5.0]
    ticks = [
        d * m
        for d in decades
        for m in multipliers
        if lo * 0.9999999 <= d * m <= hi * 1.0000001
    ]
    return sorted(ticks) or [lo]


def _fmt_tick(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:g}M"
    if value >= 1e3:
        return f"{value / 1e3:g}k"
    return f"{value:g}"


def plot_series(
    series_list: Sequence[Series],
    x_column: str = "area_rbe",
    y_column: str = "tpi_ns",
    width: int = 72,
    height: int = 22,
) -> AsciiPlot:
    """Render several series as one log-log scatter plot.

    Raises
    ------
    ExperimentError
        If no series carries plottable (positive) data in the chosen
        columns.
    """
    points: List[Tuple[float, float, str]] = []
    legend: List[Tuple[str, str]] = []
    for index, series in enumerate(series_list):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append((glyph, series.name))
        xs = series.column(x_column)
        ys = series.column(y_column)
        for x, y in zip(xs, ys):
            if isinstance(x, (int, float)) and isinstance(y, (int, float)):
                if x > 0 and y > 0:
                    points.append((float(x), float(y), glyph))
    if not points:
        raise ExperimentError("nothing to plot: no positive numeric points")

    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = min(p[1] for p in points)
    y_hi = max(p[1] for p in points)
    # Pad degenerate ranges so a single point still renders.
    if x_lo == x_hi:
        x_lo, x_hi = x_lo * 0.9, x_hi * 1.1
    if y_lo == y_hi:
        y_lo, y_hi = y_lo * 0.9, y_hi * 1.1

    lx_lo, lx_hi = math.log10(x_lo), math.log10(x_hi)
    ly_lo, ly_hi = math.log10(y_lo), math.log10(y_hi)

    def col_of(x: float) -> int:
        frac = (math.log10(x) - lx_lo) / (lx_hi - lx_lo)
        return min(width - 1, max(0, round(frac * (width - 1))))

    def row_of(y: float) -> int:
        frac = (math.log10(y) - ly_lo) / (ly_hi - ly_lo)
        return min(height - 1, max(0, round((1.0 - frac) * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        grid[row_of(y)][col_of(x)] = glyph

    margin = 9
    lines = []
    y_ticks = {row_of(t): t for t in _log_ticks(y_lo, y_hi)}
    for row in range(height):
        label = _fmt_tick(y_ticks[row]) if row in y_ticks else ""
        lines.append(f"{label:>{margin - 2}} |" + "".join(grid[row]))
    lines.append(" " * (margin - 1) + "+" + "-" * width)
    x_axis = [" "] * width
    x_labels: List[Tuple[int, str]] = []
    for tick in _log_ticks(x_lo, x_hi):
        col = col_of(tick)
        x_axis[col] = "|"
        x_labels.append((col, _fmt_tick(tick)))
    lines.append(" " * margin + "".join(x_axis))
    label_row = [" "] * (width + margin)
    for col, text in x_labels:
        start = min(margin + col, len(label_row) - len(text))
        label_row[start : start + len(text)] = list(text)
    lines.append("".join(label_row).rstrip())
    return AsciiPlot(lines=tuple(lines), legend=tuple(legend))


def plot_experiment(
    result: ExperimentResult,
    width: int = 72,
    height: int = 22,
    series_names: Optional[Sequence[str]] = None,
) -> str:
    """Render an experiment's TPI-vs-area series like the paper's figure.

    Only series that carry the standard ``(config, area_rbe, tpi_ns)``
    columns are plotted (Table 1 and the timing figures have their own
    natural table form and raise).
    """
    if series_names is not None:
        chosen = [result.get_series(name) for name in series_names]
    else:
        chosen = [
            s
            for s in result.series
            if "area_rbe" in s.columns and "tpi_ns" in s.columns
        ]
    if not chosen:
        raise ExperimentError(
            f"{result.experiment_id} has no TPI-vs-area series to plot"
        )
    plot = plot_series(chosen, width=width, height=height)
    header = f"== {result.experiment_id}: {result.title} (log-log) =="
    return f"{header}\n{plot.render()}"
