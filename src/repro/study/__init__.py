"""Experiment registry: one runnable experiment per paper exhibit.

Every table and figure in the paper's evaluation maps to a registered
:class:`~repro.study.registry.Experiment` that recomputes its series
from the library and renders them as text tables shaped like the
original plot (config label, area in rbe, TPI in ns, …).

>>> from repro.study import get_experiment, experiment_ids
>>> "fig5" in experiment_ids()
True
>>> result = get_experiment("fig1").run(scale=0.05)  # doctest: +SKIP
>>> print(result.render())                            # doctest: +SKIP
"""

from .registry import (
    Experiment,
    ExperimentResult,
    Series,
    experiment_ids,
    get_experiment,
    run_experiment,
)

# Importing the experiment modules registers them.
from .experiments import (  # noqa: F401
    dual_ported,
    exclusion_demo,
    exclusive,
    extensions,
    long_offchip,
    single_level,
    table1,
    timing_figures,
    two_level_baseline,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "Series",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
]
