"""Persistence for experiment results (JSON) and whole-study reports.

Reproduction artefacts should survive the process: every
:class:`~repro.study.registry.ExperimentResult` serialises to a stable
JSON document (and back), and :func:`write_report` regenerates any set
of experiments into a directory with one ``.json`` + ``.txt`` pair per
exhibit plus an index — the bundle a reviewer would want to diff
between runs.

Reports run through the resilient engine (:mod:`repro.runner`): each
experiment is one journalled unit, so an interrupted ``write_report``
re-invoked with ``resume=True`` skips finished exhibits, a failing
exhibit can be isolated (``keep_going=True``) into a ``FAILURES.json``
manifest while the rest of the report completes, and every artefact is
written atomically (no half-written JSON after a crash).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..errors import ExperimentError, ReproError
from ..obs.telemetry import Telemetry
from ..runner import (
    RUN_METADATA_NAME,
    CancelToken,
    PoolRunner,
    ResourceWatchdog,
    RetryPolicy,
    RunJournal,
    Runner,
    RunUnit,
    matches_sidecar,
    resolve_workers,
    untrack,
    write_manifest,
    write_text_atomic,
)
from ..runner import faults
from .registry import Experiment, ExperimentResult, Series, experiment_ids, get_experiment

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "write_report",
    "JOURNAL_NAME",
    "FAILURES_NAME",
]

#: Format version for stored results.
SCHEMA_VERSION = 1

#: File names used inside a report directory.
JOURNAL_NAME = "journal.jsonl"
FAILURES_NAME = "FAILURES.json"


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-safe representation of ``result``."""
    return {
        "schema": SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "series": [
            {
                "name": series.name,
                "columns": list(series.columns),
                "rows": [list(row) for row in series.rows],
            }
            for series in result.series
        ],
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from ``result_to_dict`` output.

    Raises
    ------
    ExperimentError
        On missing keys, malformed structure, or an unsupported schema
        version.  A document with a *newer* schema than this library
        writes gets an explicit "upgrade repro" message rather than a
        generic failure.
    """
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"malformed result document: expected an object, got {type(payload).__name__}"
        )
    try:
        schema = payload["schema"]
        if not isinstance(schema, int):
            raise ExperimentError(
                f"malformed result document: schema must be an integer, got {schema!r}"
            )
        if schema > SCHEMA_VERSION:
            raise ExperimentError(
                f"result schema {schema} is newer than this repro supports "
                f"({SCHEMA_VERSION}); upgrade repro to read this file"
            )
        if schema != SCHEMA_VERSION:
            raise ExperimentError(f"unsupported result schema {schema!r}")
        if not isinstance(payload["series"], list):
            raise ExperimentError("malformed result document: series must be a list")
        series = tuple(
            Series(
                name=entry["name"],
                columns=tuple(entry["columns"]),
                rows=tuple(tuple(row) for row in entry["rows"]),
            )
            for entry in payload["series"]
        )
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            series=series,
            notes=payload.get("notes", ""),
        )
    except KeyError as missing:
        raise ExperimentError(f"malformed result document: missing {missing}") from None
    except TypeError:
        raise ExperimentError("malformed result document: series entries malformed") from None


def save_result(
    result: ExperimentResult, path: Union[str, Path], *, track: bool = True
) -> None:
    """Write ``result`` as pretty-printed JSON (atomic tmp+rename).

    ``track=True`` (default) records a sha256 sidecar next to the file
    so ``repro verify`` can prove the artefact unchanged later.
    """
    write_text_atomic(
        path, json.dumps(result_to_dict(result), indent=2) + "\n", track=track
    )


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Load a result written by :func:`save_result`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ExperimentError(f"{path} is not valid JSON: {error}") from None
    return result_from_dict(payload)


def _artifact_valid(out: Path, experiment_id: str) -> bool:
    """True when both report artefacts of ``experiment_id`` load cleanly.

    Besides parsing the JSON, both artefacts must match their sha256
    sidecars (a missing sidecar — a pre-integrity artefact — passes):
    a bit-flipped ``.txt`` or a corrupted-but-still-parseable ``.json``
    re-runs on resume instead of being trusted.
    """
    json_path = out / f"{experiment_id}.json"
    txt_path = out / f"{experiment_id}.txt"
    if not txt_path.exists():
        return False
    try:
        load_result(json_path)
        if not matches_sidecar(json_path) or not matches_sidecar(txt_path):
            return False
    except (ReproError, OSError):
        return False
    return True


@dataclass(frozen=True)
class _ReportRun:
    """Picklable body of one report unit: run one exhibit, write artefacts.

    The experiment is looked up by id at call time — importing
    :mod:`repro.study` (which unpickling this class triggers) populates
    the registry, so pool workers resolve the same experiment the
    parent validated up front.
    """

    out_dir: str
    experiment_id: str
    scale: Optional[float]

    def __call__(self) -> str:
        experiment = get_experiment(self.experiment_id)
        result = experiment.run(scale=self.scale)
        out = Path(self.out_dir)
        json_path = out / f"{self.experiment_id}.json"
        save_result(result, json_path, track=True)
        write_text_atomic(
            out / f"{self.experiment_id}.txt", result.render() + "\n", track=True
        )
        # Test hook: emulates post-write bit-rot that bypassed atomic
        # rename (truncation, bit flips, partial content).
        faults.damage_artifact(self.experiment_id, json_path)
        return self.experiment_id


def _report_unit(
    out: Path, experiment: Experiment, scale: Optional[float]
) -> RunUnit:
    experiment_id = experiment.experiment_id
    return RunUnit(
        unit_id=experiment_id,
        payload={
            "experiment_id": experiment_id,
            "scale": scale,
            "schema": SCHEMA_VERSION,
        },
        run=_ReportRun(str(out), experiment_id, scale),
        check_skip=lambda: _artifact_valid(out, experiment_id),
    )


def write_report(
    out_dir: Union[str, Path],
    ids: Optional[Iterable[str]] = None,
    scale: Optional[float] = None,
    *,
    resume: bool = False,
    keep_going: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    workers: "Union[None, int, str]" = None,
    watchdog: Optional[ResourceWatchdog] = None,
    telemetry: "Union[bool, Telemetry]" = False,
    cancel: Optional[CancelToken] = None,
) -> List[str]:
    """Run experiments and write ``<id>.json`` / ``<id>.txt`` + an index.

    Parameters
    ----------
    out_dir:
        Created if missing.
    ids:
        Experiment ids to run; default all registered.
    scale:
        Trace scale passed to each experiment.
    resume:
        Replay ``journal.jsonl`` in ``out_dir`` and skip experiments
        already completed with the same id/scale/schema — provided
        their artefacts still load (corrupt or missing files re-run).
    keep_going:
        Isolate per-experiment failures: finish the rest of the report
        and write a ``FAILURES.json`` manifest instead of raising on
        the first failure.  Without it the first failure is re-raised,
        but the journal and manifest still record everything done so
        far, so a later ``resume`` run picks up where this one stopped.
    timeout_s:
        Per-experiment wall-clock budget (pre-emptive ``SIGALRM`` on a
        POSIX main thread — including pool workers — with a portable
        post-hoc deadline check everywhere else).
    retries:
        Extra attempts per experiment for transient failures, with
        exponential backoff (timeouts are not retried).
    workers:
        ``None`` (default) runs experiments serially; an integer or
        ``"auto"`` runs them in that many worker processes with the
        same journal, isolation, retry, and timeout semantics — and
        byte-identical artefacts (``elapsed_s`` in the journal aside).
    telemetry:
        True (or a pre-built :class:`~repro.obs.Telemetry` bundle)
        records per-experiment metrics and spans into
        ``METRICS.jsonl`` / ``SPANS.jsonl`` in ``out_dir`` — volatile
        artefacts that never change a result byte.
    cancel:
        Optional :class:`~repro.runner.CancelToken` (normally a
        :class:`~repro.runner.Supervisor`'s): once tripped, the run
        drains — in-flight experiments finish and are journalled, the
        rest are left for ``--resume`` — and the index/manifest below
        still cover everything that completed.

    Returns
    -------
    list of str
        The ids whose artefacts are present and valid after this call
        (freshly run or resumed), in run order.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    chosen = list(ids) if ids is not None else experiment_ids()
    # Resolve everything up front: an unknown id fails fast, before any
    # artefact or journal is touched.
    experiments = [get_experiment(experiment_id) for experiment_id in chosen]
    bundle: Optional[Telemetry]
    if isinstance(telemetry, Telemetry):
        bundle = telemetry.bind(out)
    elif telemetry:
        bundle = Telemetry().bind(out)
    else:
        bundle = None
    guard = watchdog if watchdog is not None else ResourceWatchdog()
    if guard.telemetry is None:
        guard.telemetry = bundle
    guard.preflight_disk(out)
    metadata = {"run": 1, "kind": "report", "ids": chosen, "scale": scale}
    write_text_atomic(
        out / RUN_METADATA_NAME,
        json.dumps(metadata, sort_keys=True) + "\n",
        track=True,
    )
    journal = RunJournal.open(out / JOURNAL_NAME, resume=resume)
    n_workers = resolve_workers(workers)
    if n_workers is None:
        runner: "Union[Runner, PoolRunner]" = Runner(
            journal=journal,
            retry=RetryPolicy(max_attempts=retries + 1),
            timeout_s=timeout_s,
            keep_going=keep_going,
            telemetry=bundle,
            cancel=cancel,
        )
    else:
        runner = PoolRunner(
            journal=journal,
            retry=RetryPolicy(max_attempts=retries + 1),
            timeout_s=timeout_s,
            keep_going=keep_going,
            workers=n_workers,
            watchdog=guard,
            telemetry=bundle,
            cancel=cancel,
        )
    run = runner.run([_report_unit(out, experiment, scale) for experiment in experiments])

    completed = {outcome.unit_id for outcome in run.completed}
    written = [eid for eid in chosen if eid in completed]
    index_lines = [
        f"{experiment.experiment_id}\t{experiment.paper_reference}\t{experiment.title}"
        for experiment in experiments
        if experiment.experiment_id in completed
    ]
    if index_lines:
        write_text_atomic(
            out / "INDEX.tsv", "\n".join(index_lines) + "\n", track=True
        )

    failures_path = out / FAILURES_NAME
    if run.failed:
        write_text_atomic(
            failures_path,
            json.dumps(run.failures_manifest(), indent=2) + "\n",
            track=True,
        )
    else:
        failures_path.unlink(missing_ok=True)
        untrack(failures_path)

    # Bind the directory's artefacts together before surfacing any
    # failure: even a failed run leaves a verifiable tree behind.
    write_manifest(out)
    if run.failed and not keep_going:
        run.raise_first_failure()
    return written
