"""Persistence for experiment results (JSON) and whole-study reports.

Reproduction artefacts should survive the process: every
:class:`~repro.study.registry.ExperimentResult` serialises to a stable
JSON document (and back), and :func:`write_report` regenerates any set
of experiments into a directory with one ``.json`` + ``.txt`` pair per
exhibit plus an index — the bundle a reviewer would want to diff
between runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..errors import ExperimentError
from .registry import ExperimentResult, Series, experiment_ids, get_experiment

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result", "write_report"]

#: Format version for stored results.
SCHEMA_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-safe representation of ``result``."""
    return {
        "schema": SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "series": [
            {
                "name": series.name,
                "columns": list(series.columns),
                "rows": [list(row) for row in series.rows],
            }
            for series in result.series
        ],
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from ``result_to_dict`` output.

    Raises
    ------
    ExperimentError
        On missing keys or an unsupported schema version.
    """
    try:
        if payload["schema"] != SCHEMA_VERSION:
            raise ExperimentError(
                f"unsupported result schema {payload['schema']!r}"
            )
        series = tuple(
            Series(
                name=entry["name"],
                columns=tuple(entry["columns"]),
                rows=tuple(tuple(row) for row in entry["rows"]),
            )
            for entry in payload["series"]
        )
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            series=series,
            notes=payload.get("notes", ""),
        )
    except KeyError as missing:
        raise ExperimentError(f"malformed result document: missing {missing}") from None


def save_result(result: ExperimentResult, path: Union[str, Path]) -> None:
    """Write ``result`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Load a result written by :func:`save_result`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ExperimentError(f"{path} is not valid JSON: {error}") from None
    return result_from_dict(payload)


def write_report(
    out_dir: Union[str, Path],
    ids: Optional[Iterable[str]] = None,
    scale: Optional[float] = None,
) -> List[str]:
    """Run experiments and write ``<id>.json`` / ``<id>.txt`` + an index.

    Parameters
    ----------
    out_dir:
        Created if missing.
    ids:
        Experiment ids to run; default all registered.
    scale:
        Trace scale passed to each experiment.

    Returns
    -------
    list of str
        The ids written, in run order.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    chosen = list(ids) if ids is not None else experiment_ids()
    index_lines = []
    for experiment_id in chosen:
        experiment = get_experiment(experiment_id)
        result = experiment.run(scale=scale)
        save_result(result, out / f"{experiment_id}.json")
        (out / f"{experiment_id}.txt").write_text(result.render() + "\n")
        index_lines.append(
            f"{experiment_id}\t{experiment.paper_reference}\t{experiment.title}"
        )
    (out / "INDEX.tsv").write_text("\n".join(index_lines) + "\n")
    return chosen
