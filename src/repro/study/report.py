"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["render_table", "format_value"]


def format_value(value: object) -> str:
    """Render one cell: floats get sensible precision, ints group digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 10000:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.5f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    columns: Sequence[str], rows: Iterable[Tuple[object, ...]]
) -> str:
    """Render rows under headers with right-aligned numeric columns."""
    formatted = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(name) for name in columns]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = "  ".join(name.rjust(widths[i]) for i, name in enumerate(columns))
    rule = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in formatted
    ]
    return "\n".join([header, rule, *body])
