"""Figures 17–20: 200 ns off-chip miss service (no board-level cache).

The miss-rate simulations are shared with the 50 ns figures (off-chip
time does not change cache contents); only the TPI weighting differs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..registry import ExperimentResult, Series, register
from .common import baseline_config, figure_series

__all__ = ["fig17", "fig18", "fig19", "fig20"]


def _long_offchip_figure(
    experiment_id: str,
    workloads: Sequence[str],
    scale: Optional[float],
    include_cloud: bool = False,
) -> ExperimentResult:
    template = baseline_config(off_chip_ns=200.0)
    series: Tuple[Series, ...] = tuple(
        s
        for workload in workloads
        for s in figure_series(workload, template, scale, include_cloud=include_cloud)
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{' and '.join(workloads)}: 200ns off-chip, L2 4-way set-associative",
        series=series,
        notes="Two-level hierarchies are a bigger win with the larger off-chip time.",
    )


@register("fig17", "gcc1: 200ns off-chip, L2 4-way set-associative", "Figure 17 (p.17)")
def fig17(scale: Optional[float] = None) -> ExperimentResult:
    return _long_offchip_figure("fig17", ("gcc1",), scale, include_cloud=True)


@register("fig18", "doduc and espresso: 200ns off-chip, L2 4-way", "Figure 18 (p.17)")
def fig18(scale: Optional[float] = None) -> ExperimentResult:
    return _long_offchip_figure("fig18", ("doduc", "espresso"), scale)


@register("fig19", "fpppp and li: 200ns off-chip, L2 4-way", "Figure 19 (p.18)")
def fig19(scale: Optional[float] = None) -> ExperimentResult:
    return _long_offchip_figure("fig19", ("fpppp", "li"), scale)


@register("fig20", "tomcatv and eqntott: 200ns off-chip, L2 4-way", "Figure 20 (p.18)")
def fig20(scale: Optional[float] = None) -> ExperimentResult:
    return _long_offchip_figure("fig20", ("tomcatv", "eqntott"), scale)
