"""Figures 1 and 2: the timing model's own exhibits.

Figure 1 plots the optimised access and cycle time of the (pair of)
first-level caches against their area.  Figure 2 plots second-level
access/cycle times assuming 4 KB L1 caches, showing the quantisation of
the L2 cycle to whole processor cycles.
"""

from __future__ import annotations

from typing import Optional

from ...area.model import optimal_cache_area
from ...core.config import SystemConfig
from ...core.tpi import system_timings
from ...timing.optimal import optimal_timing
from ...units import fmt_size, kb
from ..registry import ExperimentResult, Series, register

__all__ = ["fig1", "fig2"]

_L1_SIZES_KB = (1, 2, 4, 8, 16, 32, 64, 128, 256)
_L2_SIZES_KB = (8, 16, 32, 64, 128, 256)


@register(
    "fig1",
    "First level cache access and cycle times",
    "Figure 1 (p.5)",
)
def fig1(scale: Optional[float] = None) -> ExperimentResult:
    """L1 access/cycle time vs area for the paper's nine sizes.

    ``scale`` is accepted for interface uniformity and ignored: the
    exhibit involves no trace simulation.
    """
    rows = []
    for size_kb in _L1_SIZES_KB:
        size = kb(size_kb)
        timing = optimal_timing(size, associativity=1)
        # The X axis is the area of the split L1 pair, as plotted.
        area = 2.0 * optimal_cache_area(size, associativity=1).total
        rows.append(
            (
                fmt_size(size),
                area,
                timing.access_ns,
                timing.cycle_ns,
                f"{timing.organization.ndwl}/{timing.organization.ndbl}"
                f"/{timing.organization.nspd}",
            )
        )
    series = Series(
        name="L1 pair timing (0.5um)",
        columns=("l1_size", "area_rbe", "access_ns", "cycle_ns", "org ndwl/ndbl/nspd"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="First level cache access and cycle times",
        series=(series,),
        notes="Direct-mapped split I/D pair; X axis is pair area in rbe.",
    )


@register(
    "fig2",
    "L2 access and cycle times with 4KB L1 caches",
    "Figure 2 (p.5)",
)
def fig2(scale: Optional[float] = None) -> ExperimentResult:
    """L2 timing (raw and quantised) against L2 area, with 4 KB L1s."""
    rows = []
    for size_kb in _L2_SIZES_KB:
        size = kb(size_kb)
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=size, l2_associativity=4)
        timings = system_timings(config)
        area = optimal_cache_area(size, associativity=4).total
        rows.append(
            (
                fmt_size(size),
                area,
                timings.l2_raw_access_ns,
                timings.l2_raw_cycle_ns,
                timings.l2_cycle_ns,
                timings.l2_cycles,
                timings.l2_hit_penalty_ns,
            )
        )
    series = Series(
        name="L2 timing with 4KB L1 (4-way)",
        columns=(
            "l2_size",
            "area_rbe",
            "access_ns",
            "cycle_ns",
            "quantised_cycle_ns",
            "l2_cycles",
            "l1_miss_penalty_ns",
        ),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="L2 access and cycle times with 4KB L1 caches",
        series=(series,),
        notes=(
            "The quantised cycle is rounded up to a whole multiple of the "
            "4KB L1 cycle time; the L1 miss penalty is 2*T_L2 + T_L1 (Sec 2.5)."
        ),
    )
