"""Registered experiments for the beyond-the-paper studies.

Ids ``ext1`` … ``ext10`` make the extension results as reproducible as
the paper's own exhibits: ``python -m repro run ext1`` etc.  Each maps
to a claim the paper states without measuring (see DESIGN.md §8).
"""

from __future__ import annotations

from typing import Optional

from ...cache.hierarchy import Policy, simulate_hierarchy
from ...core.config import SystemConfig
from ...core.evaluate import evaluate
from ...ext.banking import evaluate_banked
from ...ext.inclusion import simulate_strict_inclusion
from ...ext.l3 import evaluate_with_board_cache
from ...ext.multicycle import evaluate_multicycle
from ...ext.multiprogramming import multiprogramming_study
from ...ext.nonblocking import evaluate_non_blocking
from ...ext.stream_buffer import simulate_stream_buffer
from ...ext.victim import simulate_victim_cache
from ...ext.writes import count_write_traffic, evaluate_with_writes
from ...power.system import energy_per_instruction
from ...traces.store import get_trace
from ...units import kb
from ..registry import ExperimentResult, Series, register

__all__ = []

_SINGLE = SystemConfig(l1_bytes=kb(64))
_TWO = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(128))


@register("ext1", "Power: two-level uses less energy at equal area", "Intro advantage 5")
def ext1(scale: Optional[float] = None) -> ExperimentResult:
    rows = []
    for workload in ("gcc1", "li"):
        for label, config in (("64:0", _SINGLE), ("8:128", _TWO)):
            energy = energy_per_instruction(config, workload, scale=scale)
            rows.append(
                (workload, label, energy.on_chip_epi_pj, energy.epi_pj)
            )
    series = Series(
        name="energy per instruction",
        columns=("workload", "config", "onchip_epi_pj", "epi_pj"),
        rows=tuple(rows),
    )
    return ExperimentResult("ext1", "Two-level power advantage", (series,))


@register("ext2", "Future work: multicycle L1 and non-blocking loads", "Section 10")
def ext2(scale: Optional[float] = None) -> ExperimentResult:
    multicycle_rows = []
    for label, config in (("64:0", _SINGLE), ("8:128", _TWO)):
        base = evaluate(config, "gcc1", scale=scale)
        multi = evaluate_multicycle(config, "gcc1", scale=scale)
        multicycle_rows.append((label, base.tpi_ns, multi.tpi_ns, multi.l1_cycles))
    nb_rows = []
    nb_config = SystemConfig(l1_bytes=kb(2), l2_bytes=kb(32))
    for overlap in (0.0, 0.5, 0.9):
        result = evaluate_non_blocking(nb_config, "gcc1", overlap=overlap, scale=scale)
        nb_rows.append((overlap, result.tpi_ns))
    return ExperimentResult(
        "ext2",
        "Section 10 conjectures, measured",
        (
            Series(
                name="conjecture 1: multicycle L1",
                columns=("config", "baseline_tpi_ns", "multicycle_tpi_ns", "l1_cycles"),
                rows=tuple(multicycle_rows),
            ),
            Series(
                name="conjecture 2: non-blocking loads (2:32)",
                columns=("overlap", "tpi_ns"),
                rows=tuple(nb_rows),
            ),
        ),
    )


@register("ext3", "Strict inclusion vs non-inclusive vs exclusive", "Ref [1] (Baer-Wang)")
def ext3(scale: Optional[float] = None) -> ExperimentResult:
    trace = get_trace("gcc1", scale if scale is not None else 0.2)
    rows = []
    for l2_kb in (16, 64):
        strict = simulate_strict_inclusion(trace, kb(8), kb(l2_kb))
        baseline = simulate_hierarchy(trace, kb(8), kb(l2_kb), 4)
        exclusive = simulate_hierarchy(
            trace, kb(8), kb(l2_kb), 4, Policy.EXCLUSIVE
        )
        rows.append(
            (
                f"8:{l2_kb}",
                strict.global_miss_rate,
                baseline.global_miss_rate,
                exclusive.global_miss_rate,
            )
        )
    series = Series(
        name="off-chip miss rate by policy",
        columns=("config", "strict_inclusion", "non_inclusive", "exclusive"),
        rows=tuple(rows),
    )
    return ExperimentResult("ext3", "Inclusion-policy spectrum", (series,))


@register("ext4", "Victim caches and stream buffers (Jouppi 1990)", "Ref [4]")
def ext4(scale: Optional[float] = None) -> ExperimentResult:
    victim_rows = []
    for lines in (4, 16, 64):
        stats = simulate_victim_cache("gcc1", kb(8), victim_lines=lines, scale=scale)
        victim_rows.append((lines, stats.victim_hit_rate, stats.miss_rate_below))
    buffer_rows = []
    for workload in ("fpppp", "gcc1", "eqntott"):
        stats = simulate_stream_buffer(workload, kb(4), scale=scale)
        buffer_rows.append((workload, stats.buffer_hit_rate, stats.miss_rate_below))
    return ExperimentResult(
        "ext4",
        "Reference [4]'s structures",
        (
            Series(
                name="victim buffer on 8K L1s (gcc1)",
                columns=("victim_lines", "hit_rate", "miss_rate_below"),
                rows=tuple(victim_rows),
            ),
            Series(
                name="4x4 stream buffers on 4K L1s",
                columns=("workload", "I_hit_rate", "miss_rate_below"),
                rows=tuple(buffer_rows),
            ),
        ),
    )


@register("ext5", "Write-back traffic behind the writes-as-reads model", "Section 2.2")
def ext5(scale: Optional[float] = None) -> ExperimentResult:
    rows = []
    for policy in Policy:
        traffic = count_write_traffic("gcc1", kb(8), kb(64), 4, policy, scale=scale)
        rows.append(
            (
                policy.value,
                traffic.l1_dirty_victims,
                traffic.l1_writebacks_offchip,
                traffic.l2_dirty_evictions,
            )
        )
    tpi = evaluate_with_writes(
        SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64)), "gcc1", scale=scale
    )
    tpi_series = Series(
        name="TPI impact (8:64 conventional)",
        columns=("paper_model_tpi_ns", "with_writebacks_tpi_ns", "overhead"),
        rows=((tpi.baseline_tpi_ns, tpi.tpi_ns, tpi.writeback_overhead),),
    )
    return ExperimentResult(
        "ext5",
        "Write traffic accounting",
        (
            Series(
                name="write-back events (8:64)",
                columns=("policy", "dirty_l1_victims", "direct_offchip", "l2_dirty_evictions"),
                rows=tuple(rows),
            ),
            tpi_series,
        ),
    )


@register("ext6", "Multiprogramming interference", "Section 2.2 exclusion")
def ext6(scale: Optional[float] = None) -> ExperimentResult:
    rows = []
    for quantum in (2_000, 20_000):
        for l2_kb in (0, 128):
            result = multiprogramming_study(
                "espresso",
                "li",
                kb(8),
                kb(l2_kb) if l2_kb else 0,
                quantum_instructions=quantum,
                scale=scale,
            )
            rows.append(
                (
                    quantum,
                    f"8:{l2_kb}",
                    result.solo_global_miss_rate,
                    result.combined.global_miss_rate,
                    result.interference_factor,
                )
            )
    series = Series(
        name="espresso+li interleaved",
        columns=("quantum", "config", "solo_mr", "mixed_mr", "inflation"),
        rows=tuple(rows),
    )
    return ExperimentResult("ext6", "Context-switch interference", (series,))


@register("ext7", "Explicit board-level cache vs constant off-chip", "Section 8 close")
def ext7(scale: Optional[float] = None) -> ExperimentResult:
    config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
    rows = []
    for l3_kb in (256, 1024, 4096):
        result = evaluate_with_board_cache(
            config, "gcc1", l3_bytes=kb(l3_kb), scale=scale
        )
        rows.append(
            (
                f"{l3_kb}K",
                result.l3_local_miss_rate,
                result.effective_off_chip_ns,
                result.tpi_ns,
                result.constant_model_tpi_ns,
            )
        )
    series = Series(
        name="board cache behind 8:64 (gcc1)",
        columns=("l3", "l3_local_mr", "eff_offchip_ns", "tpi_ns", "constant_50ns_tpi"),
        rows=tuple(rows),
    )
    return ExperimentResult("ext7", "Board-level cache model", (series,))


@register("ext8", "Banked vs dual-ported first-level caches", "Section 6 / ref [8]")
def ext8(scale: Optional[float] = None) -> ExperimentResult:
    config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
    rows = []
    single = evaluate(config, "gcc1", scale=scale)
    rows.append(("single-issue", single.tpi_ns, single.area_rbe))
    for n_banks in (2, 4, 8):
        banked = evaluate_banked(config, "gcc1", n_banks=n_banks, scale=scale)
        rows.append((f"banked x{n_banks}", banked.tpi_ns, banked.area_rbe))
    dual = evaluate(config.dual_ported(), "gcc1", scale=scale)
    rows.append(("dual-ported", dual.tpi_ns, dual.area_rbe))
    series = Series(
        name="bandwidth organisations (gcc1, 8:64)",
        columns=("organisation", "tpi_ns", "area_rbe"),
        rows=tuple(rows),
    )
    return ExperimentResult("ext8", "Banking vs dual porting", (series,))


@register("ext9", "Set-associative L1s: Hill's tradeoff", "Ref [3] (Hill)")
def ext9(scale: Optional[float] = None) -> ExperimentResult:
    from ...ext.associative_l1 import evaluate_associative_l1

    rows = []
    for associativity in (1, 2, 4):
        result = evaluate_associative_l1(
            "gcc1", kb(8), associativity, scale=scale if scale is not None else 0.2
        )
        rows.append(
            (
                f"{associativity}-way",
                result.l1_miss_rate,
                result.l1_cycle_ns,
                result.tpi_ns,
            )
        )
    series = Series(
        name="8K L1s, single level, gcc1 (LRU)",
        columns=("L1", "miss_rate", "cycle_ns", "tpi_ns"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        "ext9",
        "Associativity vs cycle time at level one",
        (series,),
        notes=(
            "Associativity trades cycle time for miss rate; the winner "
            "depends on the miss penalty and the way-select cost, which "
            "is Hill's argument in the paper's reference [3]."
        ),
    )


@register("ext10", "Split vs unified first-level caches", "Intro advantage 1")
def ext10(scale: Optional[float] = None) -> ExperimentResult:
    from ...ext.unified_l1 import compare_split_vs_unified

    rows = []
    for workload in ("gcc1", "espresso", "tomcatv"):
        dm = compare_split_vs_unified(workload, kb(8), scale=scale)
        sa = compare_split_vs_unified(
            workload, kb(8), unified_associativity=4, scale=scale
        )
        rows.append(
            (
                workload,
                dm.split_miss_rate,
                dm.unified_miss_rate,
                sa.unified_miss_rate,
            )
        )
    series = Series(
        name="2x8K split vs 16K unified",
        columns=("workload", "split_mr", "unified_DM_mr", "unified_4way_mr"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        "ext10",
        "Dynamic allocation needs associativity",
        (series,),
        notes=(
            "A direct-mapped mixed cache lets streams evict code; a "
            "4-way mixed cache always wins on miss rate — which is why "
            "the paper splits the L1s and makes the mixed L2 "
            "set-associative."
        ),
    )
