"""Figures 5–9: baseline two-level caching (50 ns, conventional policy).

Figure 5 shows gcc1's full configuration cloud with the best envelope
and the single-level staircase; Figures 6–8 show the envelopes for the
other six workloads; Figure 9 repeats gcc1 with a direct-mapped L2.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..registry import ExperimentResult, Series, register
from .common import baseline_config, figure_series

__all__ = ["fig5", "fig6", "fig7", "fig8", "fig9"]


def _pair_figure(
    experiment_id: str,
    workloads: Sequence[str],
    scale: Optional[float],
    l2_associativity: int = 4,
    title_suffix: str = "50ns off-chip, L2 4-way set-associative",
    include_cloud: bool = False,
) -> ExperimentResult:
    template = baseline_config(l2_associativity=l2_associativity)
    series: Tuple[Series, ...] = tuple(
        s
        for workload in workloads
        for s in figure_series(workload, template, scale, include_cloud=include_cloud)
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{' and '.join(workloads)}: {title_suffix}",
        series=series,
    )


@register(
    "fig5",
    "gcc1: 50ns off-chip, L2 4-way set-associative",
    "Figure 5 (p.9)",
)
def fig5(scale: Optional[float] = None) -> ExperimentResult:
    return _pair_figure("fig5", ("gcc1",), scale, include_cloud=True)


@register(
    "fig6",
    "doduc and espresso: 50ns off-chip, L2 4-way set-associative",
    "Figure 6 (p.10)",
)
def fig6(scale: Optional[float] = None) -> ExperimentResult:
    return _pair_figure("fig6", ("doduc", "espresso"), scale)


@register(
    "fig7",
    "fpppp and li: 50ns off-chip, L2 4-way set-associative",
    "Figure 7 (p.10)",
)
def fig7(scale: Optional[float] = None) -> ExperimentResult:
    return _pair_figure("fig7", ("fpppp", "li"), scale)


@register(
    "fig8",
    "tomcatv and eqntott: 50ns off-chip, L2 4-way set-associative",
    "Figure 8 (p.11)",
)
def fig8(scale: Optional[float] = None) -> ExperimentResult:
    return _pair_figure("fig8", ("tomcatv", "eqntott"), scale)


@register(
    "fig9",
    "gcc1: 50ns off-chip, L2 direct-mapped",
    "Figure 9 (p.12)",
)
def fig9(scale: Optional[float] = None) -> ExperimentResult:
    return _pair_figure(
        "fig9",
        ("gcc1",),
        scale,
        l2_associativity=1,
        title_suffix="50ns off-chip, L2 direct-mapped",
        include_cloud=True,
    )
