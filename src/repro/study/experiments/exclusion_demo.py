"""Figure 21: exclusion vs inclusion during swapping (didactic).

The paper's Figure 21 explains *when* the swap produces exclusion with
two direct-mapped levels:

* **(a) second-level conflict** — addresses A and E map to the same L2
  line (and the same L1 line).  Conventionally only one of them can be
  on-chip and alternating references thrash off-chip; exclusively they
  swap between L1 and L2 and all post-warmup references stay on-chip.
* **(b) first-level conflict only** — A and B share an L1 line but not
  an L2 line, so sending the victim down leaves the L2's mapping
  unchanged: both policies keep both lines on-chip (inclusion persists).

This experiment reconstructs both scenarios on a 4-line L1 / 16-line L2
and reports the off-chip fetch counts under each policy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...cache.hierarchy import Policy, simulate_hierarchy
from ...traces.address import Trace
from ..registry import ExperimentResult, Series, register

__all__ = ["fig21", "alternating_trace"]

#: 4-line (64-byte) L1 caches and a 16-line (256-byte) L2, as drawn in
#: the paper's Figure 21.
L1_BYTES = 64
L2_BYTES = 256
LINE = 16

#: Line numbers from the figure: A and E collide in the 16-line L2
#: (both ≡ 13 mod 16) *and* in the 4-line L1 (both ≡ 1 mod 4); B
#: collides with A in the L1 only (17 ≡ 1 mod 4 but 17 ≡ 1 mod 16).
LINE_A = 13
LINE_E = 29
LINE_B = 17


def alternating_trace(first_line: int, second_line: int, n_cycles: int = 64) -> Trace:
    """A trace whose data stream alternates between two lines.

    The instruction stream stays on a single line mapping to L1/L2 set
    0, far from the conflicting data sets, so the data behaviour is
    isolated.
    """
    i_addrs = np.zeros(n_cycles, dtype=np.int64)
    d_times = np.arange(n_cycles, dtype=np.int64)
    d_lines = np.where(d_times % 2 == 0, first_line, second_line)
    return Trace("fig21", i_addrs, d_lines * LINE, d_times)


def _scenario_rows(
    label: str, first_line: int, second_line: int
) -> Tuple[Tuple[object, ...], ...]:
    trace = alternating_trace(first_line, second_line)
    rows = []
    for policy in (Policy.CONVENTIONAL, Policy.EXCLUSIVE):
        stats = simulate_hierarchy(
            trace, L1_BYTES, L2_BYTES, 1, policy, warmup_fraction=0.5
        )
        rows.append(
            (
                label,
                policy.value,
                stats.n_data_refs,
                stats.l1d_misses,
                stats.l2_hits,
                stats.l2_misses,
            )
        )
    return tuple(rows)


@register(
    "fig21",
    "Exclusion vs. inclusion during swapping, direct-mapped caches",
    "Figure 21 (p.19)",
)
def fig21(scale: Optional[float] = None) -> ExperimentResult:
    """Reproduce both swap scenarios; ``scale`` is ignored (no workload)."""
    rows = _scenario_rows("(a) L2 conflict (A,E)", LINE_A, LINE_E)
    rows += _scenario_rows("(b) L1-only conflict (A,B)", LINE_A, LINE_B)
    series = Series(
        name="alternating references, post-warmup counts",
        columns=(
            "scenario",
            "policy",
            "data_refs",
            "l1_misses",
            "l2_hits",
            "off_chip",
        ),
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="fig21",
        title="Exclusion vs. inclusion during swapping, direct-mapped caches",
        series=(series,),
        notes=(
            "Scenario (a): conventional caching thrashes off-chip on every "
            "reference while exclusive caching services everything on-chip "
            "via swaps.  Scenario (b): with an L1-only conflict, both "
            "policies keep both lines on-chip."
        ),
    )
