"""Table 1: test program references (paper scale vs synthetic scale)."""

from __future__ import annotations

from typing import Optional

from ...traces.stats import compute_stats
from ...traces.store import get_trace
from ...traces.workloads import WORKLOADS
from ..registry import ExperimentResult, Series, register

__all__ = ["table1"]


@register(
    "table1",
    "Test program references",
    "Table 1 (p.4)",
)
def table1(scale: Optional[float] = None) -> ExperimentResult:
    """Reference counts per workload: the paper's trace next to ours.

    The synthetic traces reproduce each workload's *data-reference
    ratio* exactly (it is a generator parameter taken from Table 1);
    the absolute counts are scaled down as described in DESIGN.md §2.
    """
    rows = []
    for name, spec in WORKLOADS.items():
        trace = get_trace(name, scale)
        stats = compute_stats(trace)
        rows.append(
            (
                name,
                spec.paper_instruction_refs,
                spec.paper_data_refs,
                spec.paper_total_refs,
                stats.n_instructions,
                stats.n_data_refs,
                stats.n_refs,
                stats.data_ratio,
                spec.paper_data_refs / spec.paper_instruction_refs,
            )
        )
    series = Series(
        name="references per workload",
        columns=(
            "program",
            "paper_instr_M",
            "paper_data_M",
            "paper_total_M",
            "synth_instr",
            "synth_data",
            "synth_total",
            "synth_data_ratio",
            "paper_data_ratio",
        ),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Test program references",
        series=(series,),
        notes="Paper counts are in millions; synthetic counts are absolute.",
    )
