"""Shared builders for the figure experiments.

Every TPI-vs-area figure in the paper is assembled from the same three
ingredients: a point cloud over the design space, its best-performance
envelope, and (for comparison) the single-level-only staircase.  These
helpers produce them as :class:`~repro.study.registry.Series`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ...core.config import SystemConfig
from ...core.envelope import best_envelope
from ...core.evaluate import SystemPerformance
from ...core.explorer import design_space, sweep
from ...units import kb
from ..registry import Series

__all__ = [
    "baseline_config",
    "sweep_workload",
    "cloud_series",
    "envelope_series",
    "single_level_series",
    "figure_series",
]

#: Columns shared by all TPI-vs-area series.
POINT_COLUMNS = ("config", "area_rbe", "tpi_ns")


def baseline_config(**overrides: object) -> SystemConfig:
    """The §4 baseline template: 4-way conventional L2, 50 ns off-chip."""
    return replace(SystemConfig(l1_bytes=kb(1)), **overrides)  # type: ignore[arg-type]


def sweep_workload(
    workload: str,
    template: SystemConfig,
    scale: Optional[float],
    include_single_level: bool = True,
) -> List[SystemPerformance]:
    """Evaluate the full paper design space for ``template``."""
    configs = design_space(template, include_single_level=include_single_level)
    return sweep(workload, configs, scale=scale)


def _point_rows(perfs: Sequence[SystemPerformance]) -> Tuple[Tuple[object, ...], ...]:
    ordered = sorted(perfs, key=lambda p: (p.area_rbe, p.tpi_ns))
    return tuple((p.label, p.area_rbe, p.tpi_ns) for p in ordered)


def cloud_series(name: str, perfs: Sequence[SystemPerformance]) -> Series:
    """Every evaluated configuration, ordered by area."""
    return Series(name=name, columns=POINT_COLUMNS, rows=_point_rows(perfs))


def envelope_series(name: str, perfs: Sequence[SystemPerformance]) -> Series:
    """The best-performance staircase of ``perfs``."""
    env = best_envelope(perfs)
    rows = tuple((p.label, p.area_rbe, p.tpi_ns) for p in env)
    return Series(name=name, columns=POINT_COLUMNS, rows=rows)


def single_level_series(name: str, perfs: Sequence[SystemPerformance]) -> Series:
    """The staircase restricted to single-level configurations."""
    singles = [p for p in perfs if not p.config.has_l2]
    return envelope_series(name, singles)


def figure_series(
    workload: str,
    template: SystemConfig,
    scale: Optional[float],
    include_cloud: bool = False,
) -> List[Series]:
    """The standard figure triple for one workload.

    Returns ``[cloud?, best envelope, 1-level-only envelope]`` with the
    series names the paper's legends use.
    """
    perfs = sweep_workload(workload, template, scale)
    series: List[Series] = []
    if include_cloud:
        series.append(cloud_series(f"{workload} all configs", perfs))
    series.append(envelope_series(f"{workload} best 2-level config", perfs))
    series.append(single_level_series(f"{workload} 1-level only", perfs))
    return series
