"""Figures 22–26: two-level exclusive caching (§8)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ...cache.hierarchy import Policy
from ..registry import ExperimentResult, Series, register
from .common import baseline_config, figure_series

__all__ = ["fig22", "fig23", "fig24", "fig25", "fig26"]


def _exclusive_figure(
    experiment_id: str,
    workloads: Sequence[str],
    scale: Optional[float],
    l2_associativity: int,
    include_cloud: bool = False,
) -> ExperimentResult:
    template = baseline_config(
        policy=Policy.EXCLUSIVE, l2_associativity=l2_associativity
    )
    series: Tuple[Series, ...] = tuple(
        s
        for workload in workloads
        for s in figure_series(workload, template, scale, include_cloud=include_cloud)
    )
    kind = "direct-mapped" if l2_associativity == 1 else f"{l2_associativity}-way"
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{' and '.join(workloads)}: 50ns off-chip, exclusive {kind} L2",
        series=series,
        notes=(
            "Single-level points are unaffected by the policy; two-level "
            "points replace lines into the L2 on L1 eviction and remove "
            "them on L2 hits (swap)."
        ),
    )


@register("fig22", "gcc1: 50ns off-chip, exclusive direct-mapped L2", "Figure 22 (p.21)")
def fig22(scale: Optional[float] = None) -> ExperimentResult:
    return _exclusive_figure("fig22", ("gcc1",), scale, 1, include_cloud=True)


@register("fig23", "gcc1: 50ns off-chip, exclusive 4-way L2", "Figure 23 (p.21)")
def fig23(scale: Optional[float] = None) -> ExperimentResult:
    return _exclusive_figure("fig23", ("gcc1",), scale, 4, include_cloud=True)


@register(
    "fig24",
    "doduc and espresso: 50ns off-chip, exclusive 4-way L2",
    "Figure 24 (p.22)",
)
def fig24(scale: Optional[float] = None) -> ExperimentResult:
    return _exclusive_figure("fig24", ("doduc", "espresso"), scale, 4)


@register(
    "fig25",
    "fpppp and li: 50ns off-chip, exclusive 4-way L2",
    "Figure 25 (p.22)",
)
def fig25(scale: Optional[float] = None) -> ExperimentResult:
    return _exclusive_figure("fig25", ("fpppp", "li"), scale, 4)


@register(
    "fig26",
    "eqntott and tomcatv: 50ns off-chip, exclusive 4-way L2",
    "Figure 26 (p.23)",
)
def fig26(scale: Optional[float] = None) -> ExperimentResult:
    return _exclusive_figure("fig26", ("eqntott", "tomcatv"), scale, 4)
