"""Figures 3 and 4: single-level caching performance (50 ns off-chip).

Each workload's TPI is plotted against the area of the split L1 pair;
the paper's observation — an interior minimum between 8 KB and 128 KB —
is what the series reproduce.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core.explorer import standard_l1_sizes, sweep
from ...core.config import SystemConfig
from ...units import kb
from ..registry import ExperimentResult, Series, register
from .common import POINT_COLUMNS

__all__ = ["fig3", "fig4", "single_level_curve"]

_FIG3_WORKLOADS = ("gcc1", "espresso", "doduc", "fpppp")
_FIG4_WORKLOADS = ("li", "eqntott", "tomcatv")


def single_level_curve(
    workload: str, scale: Optional[float], off_chip_ns: float = 50.0
) -> Series:
    """TPI vs area across all single-level L1 sizes for one workload."""
    configs = [
        SystemConfig(l1_bytes=size, l2_bytes=0, off_chip_ns=off_chip_ns)
        for size in standard_l1_sizes()
    ]
    perfs = sweep(workload, configs, scale=scale)
    rows = tuple((p.label, p.area_rbe, p.tpi_ns) for p in perfs)
    return Series(name=workload, columns=POINT_COLUMNS, rows=rows)


def _single_level_figure(
    experiment_id: str, workloads: Sequence[str], scale: Optional[float]
) -> ExperimentResult:
    series = tuple(single_level_curve(name, scale) for name in workloads)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{', '.join(workloads)}: 50ns off-chip service time, L1 only",
        series=series,
        notes="Every workload shows a TPI minimum between 8KB and 128KB.",
    )


@register(
    "fig3",
    "gcc1, espresso, doduc, and fpppp: 50ns off-chip service time, L1 only",
    "Figure 3 (p.7)",
)
def fig3(scale: Optional[float] = None) -> ExperimentResult:
    return _single_level_figure("fig3", _FIG3_WORKLOADS, scale)


@register(
    "fig4",
    "li, eqntott, and tomcatv: 50ns off-chip service time, L1 only",
    "Figure 4 (p.8)",
)
def fig4(scale: Optional[float] = None) -> ExperimentResult:
    return _single_level_figure("fig4", _FIG4_WORKLOADS, scale)
