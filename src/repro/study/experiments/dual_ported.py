"""Figures 10–16: dual-ported first-level caches (§6).

Each figure carries three envelopes for one workload:

* ``1-level base system`` — single-level with ordinary 6T cells;
* ``1-level dual ported`` — single-level with cells of twice the area
  and twice the bandwidth (issue rate doubled);
* ``best 2-level config`` — dual-ported L1 over a single-ported 4-way
  L2.
"""

from __future__ import annotations

from typing import Optional

from ..registry import ExperimentResult, Series, register
from .common import (
    baseline_config,
    envelope_series,
    single_level_series,
    sweep_workload,
)

__all__ = ["build_dual_ported_figure"]

_WORKLOAD_BY_FIGURE = {
    "fig10": "gcc1",
    "fig11": "espresso",
    "fig12": "doduc",
    "fig13": "fpppp",
    "fig14": "li",
    "fig15": "eqntott",
    "fig16": "tomcatv",
}

_PAGES = {
    "fig10": 13,
    "fig11": 13,
    "fig12": 14,
    "fig13": 14,
    "fig14": 15,
    "fig15": 15,
    "fig16": 16,
}


def build_dual_ported_figure(
    experiment_id: str, workload: str, scale: Optional[float]
) -> ExperimentResult:
    """Assemble the three envelopes of one §6 figure."""
    base = baseline_config()
    dual = base.dual_ported()

    base_perfs = sweep_workload(workload, base, scale)
    dual_perfs = sweep_workload(workload, dual, scale)

    series = (
        single_level_series(f"{workload} 1-level base system", base_perfs),
        single_level_series(f"{workload} 1-level dual ported", dual_perfs),
        envelope_series(f"{workload} best 2-level config", dual_perfs),
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{workload}: 50ns, 4-way, 2X L1 area, 2X instruction issue rate",
        series=series,
        notes=(
            "Dual-ported points double the issue rate and the L1 cell area; "
            "the L2 keeps single-ported cells."
        ),
    )


def _register_all() -> None:
    for experiment_id, workload in _WORKLOAD_BY_FIGURE.items():

        def runner(
            scale: Optional[float] = None,
            _id: str = experiment_id,
            _workload: str = workload,
        ) -> ExperimentResult:
            return build_dual_ported_figure(_id, _workload, scale)

        register(
            experiment_id,
            f"{workload}: 50ns, 4-way, 2X L1 area, 2X instruction issue rate",
            f"Figure {experiment_id[3:]} (p.{_PAGES[experiment_id]})",
        )(runner)


_register_all()
