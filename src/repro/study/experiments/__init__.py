"""One module per figure/table group of the paper (see DESIGN.md §4)."""
