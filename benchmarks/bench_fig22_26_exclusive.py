"""Figures 22–26: two-level exclusive caching."""

import pytest


def _staircase_series(result):
    """Envelope/staircase series only (clouds are not monotone)."""
    return [
        s
        for s in result.series
        if "best" in s.name or "1-level" in s.name
    ]


@pytest.mark.parametrize(
    "experiment_id", ["fig22", "fig23", "fig24", "fig25", "fig26"]
)
def test_exclusive_figures(run_exhibit, experiment_id):
    result = run_exhibit(experiment_id)
    for series in _staircase_series(result):
        tpis = series.column("tpi_ns")
        assert tpis == sorted(tpis, reverse=True)


def test_fig23_exclusive_beats_plain_envelope_floor(run_exhibit):
    """The exclusive 4-way envelope reaches at least as low as the
    single-level staircase — the §8 improvement in compact form."""
    result = run_exhibit("fig23")
    envelope = result.get_series("gcc1 best 2-level config")
    singles = result.get_series("gcc1 1-level only")
    assert min(envelope.column("tpi_ns")) < min(singles.column("tpi_ns"))
