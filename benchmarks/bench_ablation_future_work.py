"""Ablation: the paper's §10 future-work conjectures, quantified.

Conjecture 1 — multicycle L1s "reduce the effectiveness of two-level
on-chip caching" (the clock no longer pays for a big L1).

Conjecture 2 — non-blocking loads "may increase the benefits of a
two-level on-chip caching organization".
"""

from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.ext.multicycle import evaluate_multicycle
from repro.ext.nonblocking import evaluate_non_blocking
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.units import kb

SINGLE = SystemConfig(l1_bytes=kb(64))
TWO = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(128))


def test_conjecture1_multicycle_l1(benchmark, bench_scale, output_dir):
    def run():
        rows = []
        for workload in ("gcc1", "tomcatv", "espresso"):
            base_gain = (
                evaluate(SINGLE, workload, scale=bench_scale).tpi_ns
                / evaluate(TWO, workload, scale=bench_scale).tpi_ns
            )
            multi_gain = (
                evaluate_multicycle(SINGLE, workload, scale=bench_scale).tpi_ns
                / evaluate_multicycle(TWO, workload, scale=bench_scale).tpi_ns
            )
            rows.append((workload, base_gain, multi_gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("workload", "baseline 2-level gain", "multicycle 2-level gain"), rows
    )
    write_text_atomic(output_dir / "ablation_multicycle.txt", text + "\n")
    print("\n" + text)
    # The conjecture: the two-level gain shrinks under multicycle L1s.
    for _, base_gain, multi_gain in rows:
        assert multi_gain < base_gain


def test_conjecture2_non_blocking_loads(benchmark, bench_scale, output_dir):
    single_small = SystemConfig(l1_bytes=kb(2))
    two_small = SystemConfig(l1_bytes=kb(2), l2_bytes=kb(32))

    def run():
        rows = []
        for overlap in (0.0, 0.3, 0.6, 0.9):
            s = evaluate_non_blocking(
                single_small, "gcc1", overlap=overlap, scale=bench_scale
            )
            t = evaluate_non_blocking(
                two_small, "gcc1", overlap=overlap, scale=bench_scale
            )
            rows.append((overlap, s.tpi_ns, t.tpi_ns, s.tpi_ns / t.tpi_ns))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("overlap", "single 2:0 tpi", "two-level 2:32 tpi", "2-level gain"), rows
    )
    write_text_atomic(output_dir / "ablation_nonblocking.txt", text + "\n")
    print("\n" + text)
    # Two-level stays preferable at every overlap level.
    for _, _, _, gain in rows:
        assert gain > 1.0
