"""The introduction's fifth advantage: two-level caching uses less power.

Compares energy per instruction of a large single-level configuration
against a two-level configuration of comparable total area, plus the
per-access energy curve that drives the effect (long word/bit lines in
big flat arrays).
"""

from repro.core.config import SystemConfig
from repro.core.evaluate import system_area_rbe
from repro.power.energy import optimal_access_energy
from repro.power.system import energy_per_instruction
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.units import kb


def test_per_access_energy_curve(benchmark, output_dir):
    def run():
        return [
            (f"{k}K", optimal_access_energy(kb(k)).total)
            for k in (1, 2, 4, 8, 16, 32, 64, 128, 256)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(("cache size", "access energy (pJ)"), rows)
    write_text_atomic(output_dir / "power_access_curve.txt", text + "\n")
    print("\n" + text)
    energies = [e for _, e in rows]
    assert energies == sorted(energies)


def test_claim5_two_level_uses_less_power(benchmark, bench_scale, output_dir):
    pairs = [
        (SystemConfig(l1_bytes=kb(64)), SystemConfig(l1_bytes=kb(8), l2_bytes=kb(128))),
        (SystemConfig(l1_bytes=kb(128)), SystemConfig(l1_bytes=kb(16), l2_bytes=kb(256))),
    ]

    def run():
        rows = []
        for single, two in pairs:
            for workload in ("gcc1", "li"):
                e_single = energy_per_instruction(single, workload, scale=bench_scale)
                e_two = energy_per_instruction(two, workload, scale=bench_scale)
                rows.append(
                    (
                        workload,
                        single.label,
                        system_area_rbe(single),
                        e_single.epi_pj,
                        two.label,
                        system_area_rbe(two),
                        e_two.epi_pj,
                        e_single.epi_pj / e_two.epi_pj,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        (
            "workload",
            "single",
            "area",
            "single_epi_pJ",
            "two-level",
            "area",
            "two_epi_pJ",
            "power_ratio",
        ),
        rows,
    )
    write_text_atomic(output_dir / "power_claim5.txt", text + "\n")
    print("\n" + text)
    for row in rows:
        assert row[-1] > 1.0, "two-level must use less energy per instruction"
