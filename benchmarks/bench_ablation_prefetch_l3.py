"""Ablation: stream buffers, the explicit board cache, and banking.

Three more structures from the paper's reference list, put next to the
organisations the paper evaluates:

* stream buffers (Jouppi'90 [4]) on the instruction miss path;
* an explicit board-level L3 replacing the constant 50/200 ns off-chip
  abstraction (§8's closing remark);
* banked vs dual-ported L1s (§6 / Sohi & Franklin [8]) at equal target
  bandwidth.
"""

from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.ext.banking import evaluate_banked
from repro.ext.l3 import evaluate_with_board_cache
from repro.ext.stream_buffer import simulate_stream_buffer
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.units import kb


def test_stream_buffers_per_workload(benchmark, bench_scale, output_dir):
    def run():
        rows = []
        for workload in ("fpppp", "gcc1", "eqntott"):
            stats = simulate_stream_buffer(
                workload, kb(4), n_buffers=4, buffer_depth=4, scale=bench_scale
            )
            rows.append(
                (
                    workload,
                    stats.l1i_misses,
                    stats.buffer_hits,
                    stats.buffer_hit_rate,
                    stats.miss_rate_below,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("workload", "I_misses", "buffer_hits", "I_hit_rate", "mr_below"), rows
    )
    write_text_atomic(output_dir / "ablation_stream_buffers.txt", text + "\n")
    print("\n" + text)
    by_wl = {r[0]: r[3] for r in rows}
    # Sequential code (fpppp) gains most; branchy tables (eqntott) least.
    assert by_wl["fpppp"] > by_wl["eqntott"]


def test_board_cache_vs_constant_offchip(benchmark, bench_scale, output_dir):
    config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))

    def run():
        rows = []
        for l3_kb in (256, 1024, 4096):
            result = evaluate_with_board_cache(
                config, "gcc1", l3_bytes=kb(l3_kb), scale=bench_scale
            )
            rows.append(
                (
                    f"{l3_kb}K",
                    result.l3_local_miss_rate,
                    result.effective_off_chip_ns,
                    result.tpi_ns,
                    result.constant_model_tpi_ns,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("L3", "l3_local_mr", "eff_offchip_ns", "tpi_ns", "50ns-model tpi"), rows
    )
    write_text_atomic(output_dir / "ablation_board_cache.txt", text + "\n")
    print("\n" + text)
    tpis = [r[3] for r in rows]
    assert tpis == sorted(tpis, reverse=True)  # bigger L3 never hurts


def test_banked_vs_dual_ported(benchmark, bench_scale, output_dir):
    config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))

    def run():
        rows = []
        single = evaluate(config, "gcc1", scale=bench_scale)
        rows.append(("single-issue", single.tpi_ns, single.area_rbe))
        for n_banks in (2, 4, 8):
            banked = evaluate_banked(config, "gcc1", n_banks=n_banks, scale=bench_scale)
            rows.append((f"banked x{n_banks}", banked.tpi_ns, banked.area_rbe))
        dual = evaluate(config.dual_ported(), "gcc1", scale=bench_scale)
        rows.append(("dual-ported", dual.tpi_ns, dual.area_rbe))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(("organisation", "tpi_ns", "area_rbe"), rows)
    write_text_atomic(output_dir / "ablation_banking.txt", text + "\n")
    print("\n" + text)
    by_name = {r[0]: r for r in rows}
    # Banking sits between single-issue and dual-ported on both axes.
    assert (
        by_name["dual-ported"][1]
        < by_name["banked x4"][1]
        < by_name["single-issue"][1]
    )
    assert (
        by_name["single-issue"][2]
        < by_name["banked x4"][2]
        < by_name["dual-ported"][2]
    )
