"""Figures 1–2: the analytical timing model's exhibits.

These are pure model evaluations (no traces): Figure 1 sweeps the L1
sizes through the organisation optimiser; Figure 2 adds the §2.5 cycle
quantisation against 4 KB L1 caches.
"""

import pytest

from repro.timing.optimal import _optimal_timing_cached


@pytest.fixture(autouse=True)
def cold_timing_model():
    """Clear the organisation-search memoisation so the benchmark
    measures the real optimisation cost."""
    _optimal_timing_cached.cache_clear()
    yield


def test_fig1_l1_access_and_cycle_times(run_exhibit):
    result = run_exhibit("fig1", uses_traces=False)
    series = result.get_series("L1 pair timing (0.5um)")
    cycles = series.column("cycle_ns")
    # Paper shape: monotone growth, roughly 2x spread over the range.
    assert cycles == sorted(cycles)
    assert 1.6 <= cycles[-1] / cycles[0] <= 2.6


def test_fig2_l2_timing_with_4kb_l1(run_exhibit):
    result = run_exhibit("fig2", uses_traces=False)
    series = result.get_series("L2 timing with 4KB L1 (4-way)")
    quantised = series.column("quantised_cycle_ns")
    raw = series.column("cycle_ns")
    # Quantisation never rounds down, and the paper's example penalty
    # (2x2)+1 = 5 cycles appears for the 64 KB L2.
    assert all(q >= r - 1e-9 for q, r in zip(quantised, raw))
    by_size = dict(zip(series.column("l2_size"), series.column("l2_cycles")))
    assert by_size["64K"] == 2
