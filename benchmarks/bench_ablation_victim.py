"""Ablation: victim buffers vs tiny exclusive L2s (the y < x remark).

§8: "For y < x, the configuration becomes a shared direct-mapped victim
cache [4]."  This bench puts the genuine fully-associative victim cache
(Jouppi 1990) next to exclusive tiny L2s of equal extra capacity.
"""

from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.ext.victim import simulate_victim_cache
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.traces.store import get_trace
from repro.units import kb


def test_victim_buffer_vs_exclusive_tiny_l2(benchmark, bench_scale, output_dir):
    def run():
        trace = get_trace("gcc1", bench_scale)
        plain = simulate_hierarchy(trace, kb(8))
        rows = [("no buffer", "-", plain.global_miss_rate)]
        for lines in (4, 16, 64, 128):
            vc = simulate_victim_cache(trace, kb(8), victim_lines=lines)
            rows.append(
                (f"victim x{lines}", f"{lines * 16}B", vc.miss_rate_below)
            )
            extra_bytes = lines * 16
            if extra_bytes >= 1024:  # smallest valid L2 geometry here
                excl = simulate_hierarchy(
                    trace, kb(8), extra_bytes, 1, Policy.EXCLUSIVE
                )
                rows.append(
                    (
                        f"exclusive DM L2 {extra_bytes}B",
                        f"{extra_bytes}B",
                        excl.global_miss_rate,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(("organisation", "extra capacity", "off-chip miss rate"), rows)
    write_text_atomic(output_dir / "ablation_victim.txt", text + "\n")
    print("\n" + text)
    baseline = rows[0][2]
    for _, _, rate in rows[1:]:
        assert rate <= baseline + 1e-9, "any buffer must not add misses"
