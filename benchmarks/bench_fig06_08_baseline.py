"""Figures 6–8: baseline two-level envelopes for the other six workloads."""

import pytest


@pytest.mark.parametrize("experiment_id", ["fig6", "fig7", "fig8"])
def test_baseline_envelopes(run_exhibit, experiment_id):
    result = run_exhibit(experiment_id)
    # two workloads x (best envelope + 1-level staircase)
    assert len(result.series) == 4
    for series in result.series:
        tpis = series.column("tpi_ns")
        assert tpis == sorted(tpis, reverse=True)
        assert all(t > 0 for t in tpis)
