"""Ablation: LFSR pseudo-random vs true LRU replacement in the L2.

The paper (§2.1) uses pseudo-random replacement because that is what
the era's hardware built; this ablation quantifies how much miss rate
that choice costs against LRU across L2 sizes.
"""

from repro.cache.hierarchy import simulate_hierarchy
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.traces.store import get_trace
from repro.units import kb


def test_ablation_l2_replacement(benchmark, bench_scale, output_dir):
    def run():
        trace = get_trace("gcc1", bench_scale)
        rows = []
        for l2_kb in (16, 32, 64, 128, 256):
            lfsr = simulate_hierarchy(
                trace, kb(4), kb(l2_kb), 4, l2_replacement="lfsr"
            )
            lru = simulate_hierarchy(
                trace, kb(4), kb(l2_kb), 4, l2_replacement="lru"
            )
            rows.append(
                (
                    f"4:{l2_kb}",
                    lfsr.l2_local_miss_rate,
                    lru.l2_local_miss_rate,
                    (lfsr.l2_misses / lru.l2_misses - 1.0) * 100.0
                    if lru.l2_misses
                    else 0.0,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("config", "lfsr_l2_miss_rate", "lru_l2_miss_rate", "random_penalty_%"), rows
    )
    write_text_atomic(output_dir / "ablation_replacement.txt", text + "\n")
    print("\n" + text)
    # Random replacement never beats LRU here, and the penalty is
    # bounded (the usual <30% band for 4-way caches).
    for _, lfsr_mr, lru_mr, penalty in rows:
        assert lfsr_mr >= lru_mr - 1e-9
        assert penalty < 60.0
