"""Figures 10–16: dual-ported first-level caches (2X area, 2X issue)."""

import pytest

_FIGURES = {
    "fig10": "gcc1",
    "fig11": "espresso",
    "fig12": "doduc",
    "fig13": "fpppp",
    "fig14": "li",
    "fig15": "eqntott",
    "fig16": "tomcatv",
}


@pytest.mark.parametrize("experiment_id", sorted(_FIGURES))
def test_dual_ported_figures(run_exhibit, experiment_id):
    workload = _FIGURES[experiment_id]
    result = run_exhibit(experiment_id)
    base = result.get_series(f"{workload} 1-level base system")
    dual = result.get_series(f"{workload} 1-level dual ported")
    best = result.get_series(f"{workload} best 2-level config")

    # All three envelopes are staircases.
    for series in (base, dual, best):
        tpis = series.column("tpi_ns")
        assert tpis == sorted(tpis, reverse=True)

    # The two-level dual-ported envelope reaches at least as low as the
    # single-level dual-ported one (it contains those configs).
    assert min(best.column("tpi_ns")) <= min(dual.column("tpi_ns")) + 1e-9
