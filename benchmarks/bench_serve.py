"""Many-client load test of `repro serve`: latency and memo hit-rate.

Drives a live :class:`~repro.serve.harness.BackgroundServer` over real
TCP the way a fleet of curl clients would.  Phase one computes a small
design-point mix cold (every request misses the memo store and runs a
real evaluation); phase two hammers the same mix from concurrent
client threads, so every request is a warm, integrity-verified memo
hit.  Per-request wall latencies are recorded and summarized as
p50/p99 per phase, plus the service's own memo hit-rate, into
``benchmarks/output/BENCH_serve.json``.

The gate is the acceptance criterion of the serving PR: a warm memo
hit must be served at least ``WARM_SPEEDUP_FLOOR``× faster than a cold
compute (medians).  The margin is huge in practice — a memo hit is one
hash-verified file read, a cold compute is a full trace replay — so
the floor is safe on noisy CI runners while still catching a broken
memo path (which would show up as warm ≈ cold).
"""

import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.serve import BackgroundServer, ServePolicy

#: The design-point mix every phase cycles through.
POINTS = ((1, 0), (1, 8), (2, 0), (2, 16), (4, 32), (8, 64))

#: Trace scale for the cold evaluations (small: latency ratio, not
#: absolute cost, is what this bench gates).
SCALE = 0.05

#: Warm-phase shape: many clients, many requests over the same mix.
N_CLIENTS = 8
N_WARM_REQUESTS = 120

#: Required median cold/warm latency ratio (acceptance criterion: 10).
WARM_SPEEDUP_FLOOR = 10.0


def _payload(l1_kb, l2_kb):
    return {"l1_kb": l1_kb, "l2_kb": l2_kb, "workload": "gcc1", "scale": SCALE}


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _timed_request(server, payload):
    started = time.perf_counter()
    status, headers, _ = server.request("POST", "/v1/evaluate", payload)
    elapsed = time.perf_counter() - started
    assert status == 200, f"load test request failed: HTTP {status}"
    return elapsed, headers["x-repro-source"]


def _summary(samples):
    return {
        "n": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1e3, 3),
    }


def test_serve_load(bench_record, tmp_path):
    payloads = [_payload(l1, l2) for l1, l2 in POINTS]
    policy = ServePolicy(deadline_s=300.0, max_active=N_CLIENTS)
    with BackgroundServer(tmp_path / "store", workers=2, policy=policy) as server:
        cold_latencies = []
        for payload in payloads:
            elapsed, source = _timed_request(server, payload)
            assert source == "cold"
            cold_latencies.append(elapsed)

        warm_latencies = []
        sources = []

        def fire(index):
            elapsed, source = _timed_request(
                server, payloads[index % len(payloads)]
            )
            return elapsed, source

        with ThreadPoolExecutor(max_workers=N_CLIENTS) as clients:
            for elapsed, source in clients.map(fire, range(N_WARM_REQUESTS)):
                warm_latencies.append(elapsed)
                sources.append(source)

        health = json.loads(server.request("GET", "/healthz")[2])

    assert all(source == "memo" for source in sources), (
        "warm phase must be served entirely from the memo store"
    )
    memo = health["memo"]
    requests = health["requests"]
    served = requests["memo"] + requests["cold"] + requests["coalesced"]
    hit_rate = requests["memo"] / max(1, served)

    cold_p50 = _percentile(cold_latencies, 0.50)
    warm_p50 = _percentile(warm_latencies, 0.50)
    speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")

    record = {
        "points": len(payloads),
        "clients": N_CLIENTS,
        "scale": SCALE,
        "cold": _summary(cold_latencies),
        "warm": _summary(warm_latencies),
        "warm_speedup_p50": round(speedup, 1),
        "memo_hit_rate": round(hit_rate, 4),
        "memo_entries": memo["entries"],
        "shed": health["admission"]["shed"],
    }
    bench_record("BENCH_serve.json", record)

    assert hit_rate >= N_WARM_REQUESTS / (N_WARM_REQUESTS + len(payloads)) - 0.01
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm memo hit only {speedup:.1f}x faster than cold compute "
        f"(floor {WARM_SPEEDUP_FLOOR}x)"
    )
