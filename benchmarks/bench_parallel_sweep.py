"""Serial vs parallel sweep throughput on a medium synthetic sweep.

Runs the full default design space (45 configurations) over five
workloads — 225 units — once through the serial engine and once with
``workers="auto"``, records both wall times to
``benchmarks/output/BENCH_parallel.json``, and cross-checks that the
two backends produced identical points.

The ≥2x-speedup gate only fires on machines with at least four CPUs:
on smaller boxes (CI runners are often 1–2 cores) the measurement is
still recorded, but a parallelism assertion would measure the host,
not the code.

Caches (trace store, L1 filter memoisation, evaluation memoisation)
are cleared before *each* phase so both start cold — otherwise the
serial phase would warm the parent process for the fork()ed workers.
"""

import os
import time

from repro.core.evaluate import _cached_stats
from repro.core.explorer import as_point, design_space, run_sweep
from repro.cache.hierarchy import l1_miss_stream
from repro.traces.store import clear_trace_cache
from repro.traces.workloads import WORKLOADS

#: Fixed scale: 225 units at 0.1 keeps the serial phase around tens of
#: seconds; the comparison needs identical work, not a big trace.
SCALE = 0.1

WORKLOAD_SET = list(WORKLOADS)[:5]

#: Minimum host CPUs for the speedup assertion to be meaningful.
MIN_CPUS_FOR_GATE = 4
SPEEDUP_GATE = 2.0


def _clear_caches():
    clear_trace_cache()
    l1_miss_stream.cache_clear()
    _cached_stats.cache_clear()


def _sweep_all(workers):
    points = []
    for workload in WORKLOAD_SET:
        result = run_sweep(workload, design_space(), scale=SCALE, workers=workers)
        points.extend(as_point(value) for value in result.values())
    return points


def test_parallel_sweep_speedup(bench_record):
    n_units = len(WORKLOAD_SET) * len(design_space())
    assert n_units >= 200

    _clear_caches()
    started = time.perf_counter()
    serial_points = _sweep_all(workers=None)
    serial_s = time.perf_counter() - started

    workers = max(1, os.cpu_count() or 1)
    _clear_caches()
    started = time.perf_counter()
    parallel_points = _sweep_all(workers="auto")
    parallel_s = time.perf_counter() - started

    # The two backends must agree exactly, or the timing is meaningless.
    assert serial_points == parallel_points

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    record = {
        "units": n_units,
        "scale": SCALE,
        "workloads": WORKLOAD_SET,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "gate_applied": workers >= MIN_CPUS_FOR_GATE,
    }
    bench_record("BENCH_parallel.json", record)

    if workers >= MIN_CPUS_FOR_GATE:
        assert speedup >= SPEEDUP_GATE, (
            f"parallel sweep only {speedup:.2f}x faster than serial with "
            f"{workers} workers (expected >= {SPEEDUP_GATE}x)"
        )
