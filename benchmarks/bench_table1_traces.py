"""Table 1: trace generation and reference accounting for all seven
workloads (this is the trace-substrate benchmark)."""


def test_table1_test_program_references(run_exhibit):
    result = run_exhibit("table1")
    series = result.series[0]
    assert len(series.rows) == 7
    # Data-per-instruction ratios must track the paper's Table 1.
    for synth, paper in zip(
        series.column("synth_data_ratio"), series.column("paper_data_ratio")
    ):
        assert abs(synth - paper) < 0.05
