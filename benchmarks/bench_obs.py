"""Telemetry overhead on a full 225-unit sweep: must stay under 5%.

Runs the bench_parallel design space (five workloads x 45
configurations) twice through the serial engine: once with telemetry
off, once with a bound :class:`~repro.obs.Telemetry` bundle recording
per-unit spans, hot-path counters, and periodic ``METRICS.jsonl`` /
``SPANS.jsonl`` flushes.  The acceptance criterion of the telemetry PR
is gated here: instrumentation must cost less than
``OVERHEAD_GATE`` of the uninstrumented wall time, and must not
change a single result point.

Caches are cleared before each phase so both start cold — the
comparison needs identical work, and a warm second phase would hide
the telemetry cost inside the speedup.  Both measured times and the
per-unit telemetry cost land in ``benchmarks/output/BENCH_obs.json``.
"""

import time

from repro.area.model import _optimal_cache_area_cached
from repro.core.evaluate import _cached_stats
from repro.core.explorer import as_point, design_space, run_sweep
from repro.cache.hierarchy import l1_miss_stream
from repro.obs import Telemetry, load_metrics_file, load_spans_file
from repro.power.energy import _optimal_access_energy_cached
from repro.timing.optimal import _optimal_timing_cached
from repro.traces.store import clear_trace_cache
from repro.traces.workloads import WORKLOADS

#: Small fixed scale: the gate is a ratio, so identical work matters
#: more than a big trace; 225 units keep per-unit noise averaged out.
SCALE = 0.02

WORKLOAD_SET = list(WORKLOADS)[:5]

#: Acceptance: telemetry costs < 5% of the uninstrumented sweep.
OVERHEAD_GATE = 0.05


def _clear_caches():
    # Every process-wide memo the sweep can hit: traces, L1 filter
    # passes, evaluation stats, and the timing/area/energy solvers.
    clear_trace_cache()
    l1_miss_stream.cache_clear()
    _cached_stats.cache_clear()
    _optimal_timing_cached.cache_clear()
    _optimal_cache_area_cached.cache_clear()
    _optimal_access_energy_cached.cache_clear()


def _sweep_all(telemetry=None):
    points = []
    for workload in WORKLOAD_SET:
        result = run_sweep(
            workload, design_space(), scale=SCALE, telemetry=telemetry
        )
        points.extend(as_point(value) for value in result.values())
    return points


def test_telemetry_overhead(bench_record, tmp_path):
    n_units = len(WORKLOAD_SET) * len(design_space())
    assert n_units >= 200

    _clear_caches()
    started = time.perf_counter()
    baseline_points = _sweep_all()
    baseline_s = time.perf_counter() - started

    out_dir = tmp_path / "telemetry"
    out_dir.mkdir()
    bundle = Telemetry().bind(out_dir)
    _clear_caches()
    started = time.perf_counter()
    telemetry_points = _sweep_all(telemetry=bundle)
    telemetry_s = time.perf_counter() - started

    # Telemetry neutrality: instrumentation must not move a result.
    assert baseline_points == telemetry_points

    # The instrumented run left real artefacts behind.
    unit_spans = [
        record
        for record in load_spans_file(out_dir / "SPANS.jsonl")
        if record["name"] == "unit"
    ]
    assert len(unit_spans) == n_units
    ok_total = next(
        sample
        for sample in load_metrics_file(out_dir / "METRICS.jsonl")
        if sample["name"] == "repro_units_total"
        and sample["labels"] == {"status": "ok"}
    )
    assert ok_total["value"] == n_units

    overhead = (
        (telemetry_s - baseline_s) / baseline_s if baseline_s > 0 else 0.0
    )
    record = {
        "units": n_units,
        "scale": SCALE,
        "workloads": WORKLOAD_SET,
        "baseline_s": round(baseline_s, 3),
        "telemetry_s": round(telemetry_s, 3),
        "overhead": round(overhead, 4),
        "overhead_per_unit_ms": round(
            (telemetry_s - baseline_s) / n_units * 1e3, 3
        ),
        "spans_recorded": bundle.tracer.recorded,
    }
    bench_record("BENCH_obs.json", record)

    assert overhead < OVERHEAD_GATE, (
        f"telemetry added {overhead:.1%} to a {baseline_s:.1f}s sweep "
        f"(gate {OVERHEAD_GATE:.0%})"
    )
