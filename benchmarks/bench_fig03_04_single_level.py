"""Figures 3–4: single-level TPI vs area for all seven workloads."""

from repro.units import kb


def _interior_minimum(series):
    tpis = series.column("tpi_ns")
    labels = series.column("config")
    best = tpis.index(min(tpis))
    return labels[best]


def test_fig3_gcc1_espresso_doduc_fpppp(run_exhibit):
    result = run_exhibit("fig3")
    for series in result.series:
        tpis = series.column("tpi_ns")
        assert len(tpis) == 9
        # the paper's headline: larger is not always better
        assert tpis[0] > min(tpis)


def test_fig4_li_eqntott_tomcatv(run_exhibit):
    result = run_exhibit("fig4")
    # every workload has an interior minimum between 8K and 128K
    for series in result.series:
        best_label = _interior_minimum(series)
        l1_kb = int(best_label.split(":")[0])
        assert 8 <= l1_kb <= 128, series.name
