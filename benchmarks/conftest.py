"""Shared infrastructure for the figure/table benchmarks.

Every benchmark regenerates one paper exhibit end-to-end (traces →
simulation → timing/area models → TPI series), measures the wall time
of that regeneration with pytest-benchmark (a single cold round — the
library memoises aggressively, so repeated rounds would measure cache
hits), and writes the rendered series to ``benchmarks/output/<id>.txt``
so the rows the paper reports can be inspected after a run.

The trace scale is taken from ``REPRO_BENCH_SCALE`` (default 0.5, i.e.
500k instructions per workload).  Results at different scales differ in
noise, not shape.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path

import pytest

from repro.runner import write_text_atomic
from repro.study import run_experiment
from repro.study.registry import ExperimentResult

#: Default trace scale for benches; override with REPRO_BENCH_SCALE.
DEFAULT_BENCH_SCALE = 0.5

_OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    return float(raw) if raw else DEFAULT_BENCH_SCALE


@pytest.fixture(scope="session")
def output_dir() -> Path:
    _OUTPUT_DIR.mkdir(exist_ok=True)
    return _OUTPUT_DIR


def bench_context() -> dict:
    """Shared provenance block attached to every ``BENCH_*.json``.

    Machine and toolchain identity (python, platform, CPU count), the
    trace-scale environment knobs, and the git commit — so a bench
    trajectory is comparable across machines and commits instead of a
    bare number with no provenance.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        git_sha = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "trace_scale_env": os.environ.get("REPRO_TRACE_SCALE"),
        "bench_scale_env": os.environ.get("REPRO_BENCH_SCALE"),
        "git_sha": git_sha,
    }


@pytest.fixture
def bench_record(output_dir):
    """Write one ``BENCH_<name>.json`` with the shared context block."""

    def write(name: str, record: dict) -> dict:
        document = dict(record)
        document["context"] = bench_context()
        write_text_atomic(
            output_dir / name, json.dumps(document, indent=2) + "\n"
        )
        print()
        print(json.dumps(document, indent=2))
        return document

    return write


@pytest.fixture
def run_exhibit(benchmark, bench_scale, output_dir):
    """Benchmark one experiment id and persist its rendered series."""

    def run(experiment_id: str, uses_traces: bool = True) -> ExperimentResult:
        scale = bench_scale if uses_traces else None
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale},
            rounds=1,
            iterations=1,
        )
        text = result.render()
        write_text_atomic(output_dir / f"{experiment_id}.txt", text + "\n")
        print()
        print(text)
        return result

    return run
