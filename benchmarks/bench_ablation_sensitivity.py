"""Ablation: sensitivity sweeps around the paper's fixed parameters.

Off-chip latency beyond the paper's two points, line size beyond the
fixed 16 bytes, and the warmup window this reproduction substitutes for
the paper's very long traces.
"""

from repro.core.config import SystemConfig
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.study.sensitivity import (
    line_size_sensitivity,
    off_chip_sensitivity,
    warmup_sensitivity,
)
from repro.units import kb


def test_off_chip_latency_sweep(benchmark, bench_scale, output_dir):
    def run():
        return off_chip_sensitivity(
            "gcc1",
            area_budgets_rbe=[5e5, 2e6],
            off_chip_values_ns=(25.0, 50.0, 100.0, 200.0, 400.0),
            scale=bench_scale,
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(series.columns, series.rows)
    write_text_atomic(output_dir / "sensitivity_offchip.txt", text + "\n")
    print("\n" + text)
    # The two-level advantage at the big budget grows with latency.
    big = [r for r in series.rows if r[1] == 2e6]
    assert big[-1][4] >= big[0][4] - 1.0


def test_line_size_sweep(benchmark, bench_scale, output_dir):
    def run():
        return line_size_sensitivity(
            "gcc1",
            SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64)),
            line_sizes=(16, 32, 64),
            scale=bench_scale,
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(series.columns, series.rows)
    write_text_atomic(output_dir / "sensitivity_line_size.txt", text + "\n")
    print("\n" + text)
    rates = series.column("l1_miss_rate")
    assert rates == sorted(rates, reverse=True)  # spatial prefetch helps


def test_warmup_window_sweep(benchmark, bench_scale, output_dir):
    def run():
        return warmup_sensitivity(
            "gcc1", kb(16), kb(128), scale=bench_scale
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(series.columns, series.rows)
    write_text_atomic(output_dir / "sensitivity_warmup.txt", text + "\n")
    print("\n" + text)
    rates = series.column("global_miss_rate")
    assert rates[0] >= rates[-1] - 1e-6  # cold misses only inflate
