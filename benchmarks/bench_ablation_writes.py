"""Ablation: write-back traffic that §2.2's writes-as-reads model hides.

Quantifies (a) how much TPI the abstraction under-reports, and (b) the
off-chip write traffic under each policy — exclusive caching turns out
to keep dirty data on-chip as a side effect of writing every victim
into the L2.
"""

from repro.cache.hierarchy import Policy
from repro.core.config import SystemConfig
from repro.ext.writes import count_write_traffic, evaluate_with_writes
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.units import kb


def test_writeback_tpi_overhead(benchmark, bench_scale, output_dir):
    configs = [
        SystemConfig(l1_bytes=kb(8)),
        SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64)),
        SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64), policy=Policy.EXCLUSIVE),
        SystemConfig(l1_bytes=kb(32), l2_bytes=kb(256)),
    ]

    def run():
        rows = []
        for config in configs:
            result = evaluate_with_writes(config, "gcc1", scale=bench_scale)
            rows.append(
                (
                    config.label
                    + (" excl" if config.policy is Policy.EXCLUSIVE else ""),
                    result.baseline_tpi_ns,
                    result.tpi_ns,
                    result.writeback_overhead * 100.0,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("config", "paper-model tpi", "with writebacks", "overhead_%"), rows
    )
    write_text_atomic(output_dir / "ablation_writes_tpi.txt", text + "\n")
    print("\n" + text)
    # The paper's abstraction is vindicated: overhead stays small.
    for _, _, _, overhead in rows:
        assert overhead < 10.0


def test_offchip_write_traffic_by_policy(benchmark, bench_scale, output_dir):
    def run():
        rows = []
        for l2_kb in (32, 128):
            conv = count_write_traffic(
                "gcc1", kb(8), kb(l2_kb), 4, Policy.CONVENTIONAL, scale=bench_scale
            )
            excl = count_write_traffic(
                "gcc1", kb(8), kb(l2_kb), 4, Policy.EXCLUSIVE, scale=bench_scale
            )
            rows.append(
                (
                    f"8:{l2_kb}",
                    conv.offchip_writes,
                    excl.offchip_writes,
                    conv.l1_writebacks_offchip,
                    excl.l1_writebacks_offchip,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        (
            "config",
            "conv offchip writes",
            "excl offchip writes",
            "conv direct-to-pin",
            "excl direct-to-pin",
        ),
        rows,
    )
    write_text_atomic(output_dir / "ablation_writes_traffic.txt", text + "\n")
    print("\n" + text)
    for _, _, _, _, excl_direct in rows:
        # Exclusion writes every victim into the L2: nothing bypasses it.
        assert excl_direct == 0
