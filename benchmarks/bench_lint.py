"""Lint-engine benchmark: program-phase graph build and cache speedup.

Times the whole-program lint over the real source tree twice against
the same content-hash cache: a cold run (parse + summarize + link +
evaluate every rule) and a warm run (every file sha-hits, so only the
link + rule-evaluation half of the program phase repeats).  The two
acceptance criteria of the analysis PR are gated here:

* the serial graph build (summaries + link) finishes under
  ``GRAPH_BUILD_CEILING_S`` on the full tree;
* the cache makes a clean re-run at least ``WARM_SPEEDUP_FLOOR``×
  faster than the cold run.

The measured numbers land in ``benchmarks/output/BENCH_lint.json``.
"""

import time
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.program import link_program, summarize_source

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGETS = [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]

#: Acceptance: full-tree graph build stays interactive.
GRAPH_BUILD_CEILING_S = 10.0

#: Acceptance: a clean cached re-run is at least this much faster.
WARM_SPEEDUP_FLOOR = 5.0


def _discover_sources():
    from repro.analysis.engine import discover_files

    return discover_files(TARGETS)


def test_lint_program_and_cache(bench_record, tmp_path):
    cache = tmp_path / "lint-cache.json"

    started = time.perf_counter()
    files = _discover_sources()
    summaries = [
        summarize_source(path.read_text(), path.as_posix()) for path in files
    ]
    program = link_program(summaries)
    graph_build_s = time.perf_counter() - started

    started = time.perf_counter()
    cold = lint_paths(TARGETS, program=True, cache=cache)
    cold_s = time.perf_counter() - started
    assert cold.clean, "benchmark expects a lint-clean tree"
    assert cold.n_cached == 0

    started = time.perf_counter()
    warm = lint_paths(TARGETS, program=True, cache=cache)
    warm_s = time.perf_counter() - started
    assert warm.clean
    assert warm.n_cached == warm.n_files

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    record = {
        "files": cold.n_files,
        "functions": len(program.functions),
        "classes": len(program.classes),
        "graph_build_s": round(graph_build_s, 3),
        "cold_run_s": round(cold_s, 3),
        "warm_run_s": round(warm_s, 3),
        "warm_speedup": round(speedup, 1),
        "warm_cached_files": warm.n_cached,
    }
    bench_record("BENCH_lint.json", record)

    assert graph_build_s < GRAPH_BUILD_CEILING_S, (
        f"graph build took {graph_build_s:.1f}s on {cold.n_files} files "
        f"(ceiling {GRAPH_BUILD_CEILING_S}s)"
    )
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"cached re-run only {speedup:.1f}x faster than cold "
        f"(floor {WARM_SPEEDUP_FLOOR}x)"
    )
