"""Figures 17–20: 200 ns off-chip service (no board-level cache)."""

import pytest


def _staircase_series(result):
    """Envelope/staircase series only (clouds are not monotone)."""
    return [
        s
        for s in result.series
        if "best" in s.name or "1-level" in s.name
    ]


@pytest.mark.parametrize("experiment_id", ["fig17", "fig18", "fig19", "fig20"])
def test_long_offchip_figures(run_exhibit, experiment_id):
    result = run_exhibit(experiment_id)
    for series in _staircase_series(result):
        tpis = series.column("tpi_ns")
        assert tpis == sorted(tpis, reverse=True)


def test_fig17_small_caches_hurt_badly(run_exhibit):
    result = run_exhibit("fig17")
    cloud = result.get_series("gcc1 all configs")
    by_label = dict(zip(cloud.column("config"), cloud.column("tpi_ns")))
    # At 200 ns the 1:0 machine is dramatically slower than 32:256.
    assert by_label["1:0"] > 3 * by_label["32:256"]
