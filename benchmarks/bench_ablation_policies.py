"""Ablation: the three content-management policies side by side.

Strict inclusion (Baer–Wang back-invalidation) vs the paper's
non-inclusive baseline vs two-level exclusive caching, at several
L2:L1 capacity ratios.  The paper's §8 argument is that duplication
hurts most when the ratio is small; exclusion removes it, inclusion
doubles down on it.
"""

from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.ext.inclusion import simulate_strict_inclusion
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.traces.store import get_trace
from repro.units import kb


def test_ablation_inclusion_policies(benchmark, bench_scale, output_dir):
    # Strict inclusion needs the slow whole-trace simulator; cap the
    # scale so this ablation stays quick.
    scale = min(bench_scale, 0.2)

    def run():
        trace = get_trace("gcc1", scale)
        rows = []
        for l1_kb, l2_kb in ((8, 16), (8, 32), (8, 64), (8, 128)):
            strict = simulate_strict_inclusion(trace, kb(l1_kb), kb(l2_kb))
            baseline = simulate_hierarchy(
                trace, kb(l1_kb), kb(l2_kb), 4, Policy.CONVENTIONAL
            )
            exclusive = simulate_hierarchy(
                trace, kb(l1_kb), kb(l2_kb), 4, Policy.EXCLUSIVE
            )
            rows.append(
                (
                    f"{l1_kb}:{l2_kb}",
                    strict.l1_miss_rate,
                    baseline.l1_miss_rate,
                    strict.global_miss_rate,
                    baseline.global_miss_rate,
                    exclusive.global_miss_rate,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        (
            "config",
            "strict_l1_mr",
            "baseline_l1_mr",
            "strict_offchip",
            "baseline_offchip",
            "exclusive_offchip",
        ),
        rows,
    )
    write_text_atomic(output_dir / "ablation_policies.txt", text + "\n")
    print("\n" + text)
    for _, strict_l1, base_l1, strict_off, base_off, excl_off in rows:
        # Back-invalidation can only add L1 misses; exclusion can only
        # remove off-chip traffic.  (Strict vs baseline *off-chip*
        # traffic may dither either way through replacement noise.)
        assert strict_l1 >= base_l1 - 1e-9
        assert excl_off <= base_off + 1e-9
    # The exclusion advantage is biggest at the smallest L2:L1 ratio.
    first_gap = rows[0][4] - rows[0][5]
    last_gap = rows[-1][4] - rows[-1][5]
    assert first_gap >= last_gap - 1e-9
