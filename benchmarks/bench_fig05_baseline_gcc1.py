"""Figure 5: gcc1 full two-level design space (4-way L2, 50 ns)."""


def test_fig5_gcc1_baseline_two_level(run_exhibit):
    result = run_exhibit("fig5")
    cloud = result.get_series("gcc1 all configs")
    envelope = result.get_series("gcc1 best 2-level config")
    singles = result.get_series("gcc1 1-level only")

    assert len(cloud.rows) == 45  # the paper's full configuration set
    # The envelope is the staircase of the cloud.
    env_tpis = envelope.column("tpi_ns")
    assert env_tpis == sorted(env_tpis, reverse=True)
    assert min(env_tpis) == min(cloud.column("tpi_ns"))
    # Single-level staircase sits on or above the full envelope at the
    # right edge (two-level eventually wins).
    assert env_tpis[-1] < singles.column("tpi_ns")[-1]
