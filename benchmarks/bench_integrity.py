"""Verification throughput over a generated artefact tree.

Integrity checking runs after every CI smoke and inside ``--repair``
loops, so it must stay cheap relative to the runs it guards.  This
bench generates a synthetic results tree (many small artefacts across
several directories, all sidecar-tracked and manifested), measures a
full ``verify_tree`` pass and a ``tree_fingerprint`` pass, and records
both to ``benchmarks/output/BENCH_integrity.json``.

The gate is deliberately loose — verification of a ~600-artefact tree
must finish within seconds, i.e. orders of magnitude below the
sweeps that produce such trees — because CI runners vary widely; the
recorded absolute numbers are what trend dashboards should watch.
"""

import json
import time

from repro.runner import (
    tree_fingerprint,
    verify_tree,
    write_manifest,
    write_text_atomic,
)

#: Synthetic tree shape: directories x artefacts, ~1 KiB each.
N_DIRS = 12
N_FILES = 50
BODY = "x" * 1024

#: Upper bound for one full verification pass of the tree (seconds).
VERIFY_BUDGET_S = 10.0


def _build_tree(root):
    for d in range(N_DIRS):
        directory = root / f"run{d:02d}"
        for f in range(N_FILES):
            write_text_atomic(
                directory / f"art{f:03d}.json",
                f'{{"dir": {d}, "file": {f}, "body": "{BODY}"}}\n',
                track=True,
            )
        write_manifest(directory)
    return N_DIRS * N_FILES


def test_verify_throughput(bench_record, tmp_path):
    n_artifacts = _build_tree(tmp_path)

    started = time.perf_counter()
    report = verify_tree(tmp_path)
    verify_s = time.perf_counter() - started
    assert report.clean
    assert report.n_artifacts == n_artifacts

    started = time.perf_counter()
    fingerprint = tree_fingerprint(tmp_path)
    fingerprint_s = time.perf_counter() - started
    # artefacts + sidecars + manifests all participate
    assert len(fingerprint) == n_artifacts * 2 + N_DIRS

    record = {
        "directories": N_DIRS,
        "artifacts": n_artifacts,
        "artifact_bytes": len(BODY),
        "verify_s": round(verify_s, 3),
        "fingerprint_s": round(fingerprint_s, 3),
        "artifacts_per_s": round(n_artifacts / verify_s, 1) if verify_s > 0 else None,
    }
    bench_record("BENCH_integrity.json", record)

    assert verify_s < VERIFY_BUDGET_S, (
        f"verify_tree took {verify_s:.2f}s over {n_artifacts} artefacts "
        f"(budget {VERIFY_BUDGET_S}s)"
    )
