"""Figure 21: exclusion vs inclusion during swapping (didactic demo)."""


def test_fig21_exclusion_vs_inclusion(run_exhibit):
    result = run_exhibit("fig21", uses_traces=False)
    series = result.series[0]
    rows = {(r[0], r[1]): r for r in series.rows}

    conv_a = rows[("(a) L2 conflict (A,E)", "conventional")]
    excl_a = rows[("(a) L2 conflict (A,E)", "exclusive")]
    # Conventional thrashes off-chip on every reference; exclusive
    # services everything on-chip via swaps.
    assert conv_a[5] == conv_a[2]  # off_chip == data_refs
    assert excl_a[5] == 0

    for policy in ("conventional", "exclusive"):
        row = rows[("(b) L1-only conflict (A,B)", policy)]
        assert row[5] == 0  # inclusion persists, nothing goes off-chip
