"""Figure 9: gcc1 with a direct-mapped second level."""


def test_fig9_gcc1_direct_mapped_l2(run_exhibit):
    result = run_exhibit("fig9")
    cloud = result.get_series("gcc1 all configs")
    assert len(cloud.rows) == 45
    envelope = result.get_series("gcc1 best 2-level config")
    assert envelope.column("tpi_ns") == sorted(
        envelope.column("tpi_ns"), reverse=True
    )
