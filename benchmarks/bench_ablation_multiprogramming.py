"""Ablation: multiprogramming interference (§2.2's excluded effect).

Interleaves two workloads with several context-switch quanta and shows
how much of the interference a large mixed L2 absorbs — the flexible
allocation argument of the paper's introduction, under pressure.
"""

from repro.ext.multiprogramming import multiprogramming_study
from repro.runner import write_text_atomic
from repro.study.report import render_table
from repro.units import kb


def test_multiprogramming_interference(benchmark, bench_scale, output_dir):
    scale = min(bench_scale, 0.5)

    def run():
        rows = []
        for quantum in (2_000, 20_000, 100_000):
            for l2_kb in (0, 64, 256):
                result = multiprogramming_study(
                    "espresso",
                    "li",
                    kb(8),
                    kb(l2_kb) if l2_kb else 0,
                    quantum_instructions=quantum,
                    scale=scale,
                )
                rows.append(
                    (
                        quantum,
                        f"8:{l2_kb}",
                        result.solo_global_miss_rate,
                        result.combined.global_miss_rate,
                        result.interference_factor,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("quantum", "config", "solo_offchip_mr", "mixed_offchip_mr", "inflation"),
        rows,
    )
    write_text_atomic(output_dir / "ablation_multiprogramming.txt", text + "\n")
    print("\n" + text)
    by_key = {(q, c): infl for q, c, _, _, infl in rows}
    # Finer quanta interfere at least as much as coarse ones.
    assert by_key[(2_000, "8:0")] >= by_key[(100_000, "8:0")] - 0.05
    # A 256 KB L2 absorbs interference better than none.
    assert by_key[(2_000, "8:256")] <= by_key[(2_000, "8:0")] + 0.05
